//! Process-level pins for the observability contract (`--metrics`,
//! `--trace-out`).
//!
//! The in-process CLI tests in `src/cli.rs` share one metrics registry
//! across the whole parallel test binary, so they can only check output
//! *structure*. The contract itself — deterministic counters byte-identical
//! across `--jobs` and `--lp-route`, output byte-identical with metrics off,
//! trace files loadable as Chrome trace-event JSON — is about one command in
//! one process, so every test here spawns the real binary per command line.

use std::io::Write;
use std::process::{Command, Stdio};

use diophantus::jsonv::Json;
use proptest::prelude::*;

const BIN: &str = env!("CARGO_BIN_EXE_diophantus");

/// Runs the binary, asserting success, and returns stdout.
fn stdout_of(args: &[&str], stdin: &str) -> String {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("the diophantus binary must spawn");
    child
        .stdin
        .take()
        .expect("stdin was piped")
        .write_all(stdin.as_bytes())
        .expect("writing to the child's stdin");
    let out = child.wait_with_output().expect("the diophantus binary must exit");
    assert!(
        out.status.success(),
        "diophantus {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout must be UTF-8")
}

/// The `"counters":{...}` substring of a `--metrics` document — the block
/// the determinism contract is about. The deterministic counters hold no
/// nested objects, so the first closing brace ends the block.
fn counters_block(output: &str) -> &str {
    let start = output.find("\"counters\":{").expect("output must carry a counters block");
    let end = output[start..].find('}').expect("counters block must close") + start + 1;
    &output[start..end]
}

fn workload(kind: &str, count: &str, seed: &str) -> String {
    stdout_of(&["gen", kind, "--count", count, "--seed", seed], "")
}

#[test]
fn deterministic_counters_are_jobs_and_route_invariant() {
    let input = workload("inflated", "4", "2019");
    for command in ["decide", "batch"] {
        let mut blocks: Vec<(String, String)> = Vec::new();
        for jobs in ["1", "2", "4"] {
            for route in ["simplex", "bareiss"] {
                let out = stdout_of(
                    &[command, "--json", "--metrics", "--jobs", jobs, "--lp-route", route],
                    &input,
                );
                blocks.push((format!("--jobs {jobs} --lp-route {route}"), {
                    counters_block(&out).to_string()
                }));
            }
        }
        let (ref base_config, ref base) = blocks[0];
        for (config, block) in &blocks {
            assert_eq!(
                block, base,
                "{command}: deterministic counters diverged between {base_config} and {config}"
            );
        }
    }
}

#[test]
fn skewed_batch_streams_are_jobs_and_route_invariant() {
    // One giant all-probes pair (a 256-probe path self-containment) buried
    // amid small pairs: the workload where the unified scheduler's unit
    // claiming matters most. Both the per-job verdict lines and the
    // deterministic counters block must be byte-identical for every worker
    // count and LP route, no matter how the giant's probe chunks interleave
    // with the small pairs.
    let giant = stdout_of(&["gen", "path", "--count", "1", "--size", "3", "--seed", "7"], "");
    let small = stdout_of(&["gen", "expmap", "--count", "6", "--size", "4", "--seed", "7"], "");
    let input = format!("{giant}{small}");
    let mut outputs: Vec<(String, String, String)> = Vec::new();
    for jobs in ["1", "2", "4"] {
        for route in ["simplex", "bareiss"] {
            let args = [
                "batch",
                "--algorithm",
                "all-probes",
                "--json",
                "--metrics",
                "--jobs",
                jobs,
                "--lp-route",
                route,
            ];
            let out = stdout_of(&args, &input);
            let trailer = out.rfind("{\"metrics\":").expect("batch emits a metrics trailer");
            outputs.push((
                format!("--jobs {jobs} --lp-route {route}"),
                out[..trailer].to_string(),
                counters_block(&out[trailer..]).to_string(),
            ));
        }
    }
    let (ref base_config, ref base_verdicts, ref base_counters) = outputs[0];
    for (config, verdicts, counters) in &outputs {
        assert_eq!(
            verdicts, base_verdicts,
            "skewed batch verdicts diverged between {base_config} and {config}"
        );
        assert_eq!(
            counters, base_counters,
            "skewed batch deterministic counters diverged between {base_config} and {config}"
        );
    }
}

#[test]
fn metrics_off_leaves_every_output_byte_identical() {
    // `--metrics` must be purely additive: stripping the appended member
    // reproduces the flag-free output byte for byte (the golden suite pins
    // the flag-free output itself).
    let input = workload("spec", "3", "2019");
    for args in [&["decide", "--json"][..], &["equiv", "--json"][..]] {
        let input = if args[0] == "equiv" { workload("path", "2", "7") } else { input.clone() };
        let plain = stdout_of(args, &input);
        let with = {
            let mut args = args.to_vec();
            args.push("--metrics");
            stdout_of(&args, &input)
        };
        let idx = with.find(",\"metrics\":").expect("--metrics must add the member");
        let stripped = format!("{}}}\n", &with[..idx]);
        assert_eq!(stripped, plain, "{args:?}: --metrics changed bytes outside its member");
    }
    // batch appends one whole trailer line instead.
    let plain = stdout_of(&["batch", "--json", "--jobs", "2"], &input);
    let with = stdout_of(&["batch", "--json", "--jobs", "2", "--metrics"], &input);
    let trailer = with.lines().last().expect("batch emits output");
    assert!(trailer.starts_with("{\"metrics\":"), "last line must be the metrics trailer");
    let stripped = &with[..with.len() - trailer.len() - 1];
    assert_eq!(stripped, plain, "batch --metrics changed the per-job lines");
}

#[test]
fn trace_out_is_loadable_chrome_trace_json() {
    let dir = std::env::temp_dir().join(format!("dioph-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("decide.trace.json");
    let path_str = path.to_str().expect("temp path is UTF-8");
    // A self-containment pair with a 16-tuple probe space, fanned across two
    // workers so the trace gets real worker tracks.
    let input = "q(x1, x2) <- R(x1, x2), R('c1', x2), R^3(x1, 'c2').\n\
                 p(x1, x2) <- R(x1, x2), R('c1', x2), R^3(x1, 'c2').";
    stdout_of(
        &["decide", "--algorithm", "all-probes", "--jobs", "2", "--trace-out", path_str],
        input,
    );
    let text = std::fs::read_to_string(&path).expect("trace file must exist");
    let doc = Json::parse(text.trim_end()).expect("trace must be one valid JSON object");
    let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert!(!events.is_empty(), "{text}");
    let mut names = Vec::new();
    let mut spans = 0usize;
    for event in events {
        match event.get("ph").and_then(Json::as_str) {
            Some("M") => {
                assert_eq!(event.get("name").and_then(Json::as_str), Some("thread_name"));
                let label = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name carries args.name");
                names.push(label.to_string());
            }
            Some("X") => {
                spans += 1;
                assert!(event.get("tid").is_some() && event.get("pid").is_some(), "{text}");
                assert!(event.get("ts").is_some() && event.get("dur").is_some(), "{text}");
            }
            other => panic!("unexpected event phase {other:?}: {text}"),
        }
    }
    assert!(spans > 0, "the trace must carry phase spans: {text}");
    assert!(names.iter().any(|n| n == "main"), "{names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("probe-worker-")),
        "worker tracks must be named: {names:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_round_trips_metrics_from_every_producer() {
    let input = workload("spec", "3", "2019");
    let decide = stdout_of(&["decide", "--json", "--metrics", "--jobs", "2"], &input);
    let batch = stdout_of(&["batch", "--json", "--metrics", "--jobs", "2"], &input);
    let bench = stdout_of(&["bench", "--json", "--metrics", "--repeat", "2"], &input);
    let fuzz = stdout_of(&["fuzz", "--json", "--metrics", "--cases", "3"], "");
    let equiv = stdout_of(&["equiv", "--json", "--metrics"], &workload("path", "2", "7"));
    for (producer, document) in
        [("decide", decide), ("batch", batch), ("bench", bench), ("fuzz", fuzz), ("equiv", equiv)]
    {
        let out = stdout_of(&["verify"], &document);
        assert!(out.contains("[metrics] metrics block verified"), "{producer}: {out}");
        assert!(out.contains("1 metrics block(s)"), "{producer}: {out}");
        assert!(out.contains("0 failure(s)"), "{producer}: {out}");
    }
}

proptest! {
    // Each case spawns several real processes; a handful of cases already
    // sweeps kinds × seeds well beyond the pinned workload above.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn deterministic_counters_are_invariant_on_random_workloads(
        kind_index in 0usize..4,
        seed in 0u32..10_000,
    ) {
        let kind = ["spec", "inflated", "contained", "path"][kind_index];
        let input = workload(kind, "2", &seed.to_string());
        let mut blocks = Vec::new();
        for (jobs, route) in [("1", "simplex"), ("4", "bareiss")] {
            let out = stdout_of(
                &["decide", "--json", "--metrics", "--jobs", jobs, "--lp-route", route],
                &input,
            );
            blocks.push(counters_block(&out).to_string());
        }
        prop_assert_eq!(&blocks[0], &blocks[1], "kind {} seed {}", kind, seed);
    }
}
