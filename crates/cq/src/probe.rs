//! Probe tuples (Definition 3.1 of the paper).
//!
//! Given a projection-free CQ `q(x)` over an n-tuple of free variables, a
//! *probe tuple* is an n-tuple of constants drawn from the active domain of
//! the canonical instance `I_{q(x)}` — i.e. from the canonical constants of
//! the variables of `q` plus the language constants of `q` — that is
//! unifiable with `x` (positions carrying the same variable receive the same
//! constant).
//!
//! Theorem 3.1 checks bag containment over every probe tuple; Theorem 5.3
//! later shows the single *most-general* probe tuple suffices. Both sets are
//! produced here.

use std::collections::BTreeSet;

use crate::query::ConjunctiveQuery;
use crate::term::Term;

/// The active domain of the canonical instance `I_{q(x)}`: canonical
/// constants of the query's variables plus its language constants.
pub fn canonical_active_domain(query: &ConjunctiveQuery) -> BTreeSet<Term> {
    let mut domain: BTreeSet<Term> = query.variables().into_iter().map(Term::CanonConst).collect();
    domain.extend(query.constants());
    domain
}

/// The indexed space of candidate probe tuples of a query: every
/// `|head|`-tuple over the canonical active domain, addressable by a dense
/// raw index in `0..raw_len()`.
///
/// Candidate tuples are ordered lexicographically over the sorted domain
/// (position 0 is the most significant digit), which is exactly the order
/// [`probe_tuples`] has always produced — so any consumer that resolves raw
/// indices in ascending order sees the same probe sequence as the
/// materialising enumeration. Random access is what lets a parallel decider
/// hand out probe *indices* to worker threads instead of cloning an
/// exponential `Vec` of tuples: each worker decodes only the tuples it
/// claims, in O(arity) per tuple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProbeSpace {
    head: Vec<Term>,
    domain: Vec<Term>,
    raw_len: usize,
}

impl ProbeSpace {
    /// Builds the probe space of `query`.
    ///
    /// # Panics
    /// Panics if a head term is a constant (probe tuples are defined for
    /// queries whose head is a tuple of variables), or if
    /// `|domain|^{arity}` overflows `usize` (such a space could never be
    /// enumerated anyway).
    pub fn new(query: &ConjunctiveQuery) -> ProbeSpace {
        for t in query.head() {
            assert!(
                t.is_var(),
                "probe tuples are defined for queries with an all-variable head, found {t}"
            );
        }
        let domain: Vec<Term> = canonical_active_domain(query).into_iter().collect();
        let arity = query.arity();
        let raw_len = if arity == 0 {
            // A Boolean query has exactly one (empty) candidate tuple.
            1
        } else {
            domain
                .len()
                .checked_pow(u32::try_from(arity).expect("query arity fits in u32"))
                .expect("probe space size overflows usize")
        };
        ProbeSpace { head: query.head().to_vec(), domain, raw_len }
    }

    /// Number of candidate tuples (before the unifiability filter):
    /// `|adom(I_q)|^{arity}`, or 1 for a Boolean query.
    pub fn raw_len(&self) -> usize {
        self.raw_len
    }

    /// The sorted canonical active domain the tuples draw from.
    pub fn domain(&self) -> &[Term] {
        &self.domain
    }

    /// Decodes raw index `index` into its candidate tuple, returning `None`
    /// when the tuple is not unifiable with the head (and therefore not a
    /// probe tuple at all).
    ///
    /// # Panics
    /// Panics if `index >= raw_len()`.
    pub fn tuple(&self, index: usize) -> Option<Vec<Term>> {
        assert!(index < self.raw_len, "probe index {index} out of range {}", self.raw_len);
        let arity = self.head.len();
        let mut tuple = vec![Term::CanonConst(String::new()); arity];
        let mut rest = index;
        for pos in (0..arity).rev() {
            tuple[pos] = self.domain[rest % self.domain.len()].clone();
            rest /= self.domain.len();
        }
        unifiable_with_head(&self.head, &tuple).then_some(tuple)
    }

    /// Iterates over the probe tuples (the unifiable candidates) in raw-index
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<Term>> + '_ {
        (0..self.raw_len).filter_map(|i| self.tuple(i))
    }
}

/// Enumerates all probe tuples of a query (Definition 3.1): every
/// `|head|`-tuple over the canonical active domain that is unifiable with the
/// head.
///
/// The number of probe tuples is `|adom(I_q)|^{arity}` before the
/// unifiability filter, so this is exponential in the arity; Theorem 5.3
/// (`most_general_probe_tuple`) avoids the enumeration in the decision
/// procedure, but the full set is still used for differential testing
/// (Corollary 3.1) and for the paper's Section 3 example. Callers that only
/// need indexed access (e.g. a parallel decider) should use [`ProbeSpace`]
/// directly and skip the materialisation.
///
/// # Panics
/// Panics if a head term is a constant (probe tuples are defined for queries
/// whose head is a tuple of variables).
pub fn probe_tuples(query: &ConjunctiveQuery) -> Vec<Vec<Term>> {
    // An empty domain with positive arity gives raw_len = 0^arity = 0, so
    // the iterator is empty exactly when no probe tuple exists.
    ProbeSpace::new(query).iter().collect()
}

/// The *most-general* probe tuple `t*` (Theorem 5.3): each head variable is
/// replaced by its own canonical constant.
pub fn most_general_probe_tuple(query: &ConjunctiveQuery) -> Vec<Term> {
    query.head().iter().map(Term::canonicalize).collect()
}

fn unifiable_with_head(head: &[Term], tuple: &[Term]) -> bool {
    let mut sigma = crate::substitution::Substitution::identity();
    sigma.unify_tuples(head, tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::paper_examples;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn paper_section3_sixteen_probe_tuples() {
        // q(x1,x2) ← R(x1,x2), R(c1,x2), R(x1,c2) has 16 probe tuples:
        // all pairs over {x̂1, x̂2, c1, c2}.
        let q = paper_examples::section3_probe_example();
        let domain = canonical_active_domain(&q);
        assert_eq!(domain.len(), 4);
        let tuples = probe_tuples(&q);
        assert_eq!(tuples.len(), 16);
        // Spot-check a few members listed in the paper.
        assert!(tuples.contains(&vec![Term::canon("x1"), Term::canon("x1")]));
        assert!(tuples.contains(&vec![Term::canon("x1"), Term::constant("c1")]));
        assert!(tuples.contains(&vec![Term::constant("c2"), Term::constant("c1")]));
        // Every tuple is over the domain and has the right arity.
        for t in &tuples {
            assert_eq!(t.len(), 2);
            assert!(t.iter().all(|x| domain.contains(x)));
        }
    }

    #[test]
    fn most_general_probe_is_canonical_head() {
        let q = paper_examples::section3_query_q1();
        assert_eq!(most_general_probe_tuple(&q), vec![Term::canon("x1"), Term::canon("x2")]);
        // It is always one of the probe tuples.
        assert!(probe_tuples(&q).contains(&most_general_probe_tuple(&q)));
    }

    #[test]
    fn repeated_head_variables_restrict_probe_tuples() {
        // q(x, x) ← R(x, x): only "diagonal" tuples are unifiable with the head.
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x"), v("x")],
            vec![Atom::new("R", vec![v("x"), v("x")])],
        );
        let tuples = probe_tuples(&q);
        // Domain is {x̂}, and only (x̂, x̂) unifies.
        assert_eq!(tuples, vec![vec![Term::canon("x"), Term::canon("x")]]);
    }

    #[test]
    fn constants_enlarge_the_domain() {
        // q(x) ← R(x, c1): domain {x̂, c1}, probe tuples (x̂) and (c1).
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x")],
            vec![Atom::new("R", vec![v("x"), Term::constant("c1")])],
        );
        let tuples = probe_tuples(&q);
        assert_eq!(tuples.len(), 2);
        assert!(tuples.contains(&vec![Term::canon("x")]));
        assert!(tuples.contains(&vec![Term::constant("c1")]));
    }

    #[test]
    fn boolean_query_has_one_empty_probe_tuple() {
        let q = ConjunctiveQuery::from_atom_list(
            "b",
            vec![],
            vec![Atom::new("R", vec![Term::constant("a"), Term::constant("b")])],
        );
        assert_eq!(probe_tuples(&q), vec![Vec::<Term>::new()]);
        assert_eq!(most_general_probe_tuple(&q), Vec::<Term>::new());
    }

    #[test]
    fn existential_variables_contribute_canonical_constants() {
        // Even for a non-projection-free query, the canonical active domain
        // includes canonical constants of existential variables (they are
        // part of the canonical instance).
        let q = paper_examples::section2_query_q3();
        let domain = canonical_active_domain(&q);
        assert!(domain.contains(&Term::canon("y1")));
        assert!(domain.contains(&Term::canon("x1")));
        assert_eq!(domain.len(), 6);
    }

    #[test]
    #[should_panic(expected = "all-variable head")]
    fn grounded_heads_are_rejected() {
        let q = paper_examples::section3_query_q1().most_general_grounding();
        let _ = probe_tuples(&q);
    }

    #[test]
    fn probe_space_indexing_matches_the_materialised_enumeration() {
        for q in [
            paper_examples::section3_probe_example(),
            paper_examples::section3_query_q1(),
            ConjunctiveQuery::from_atom_list(
                "diag",
                vec![v("x"), v("x")],
                vec![Atom::new("R", vec![v("x"), v("x")])],
            ),
        ] {
            let space = ProbeSpace::new(&q);
            let via_index: Vec<Vec<Term>> =
                (0..space.raw_len()).filter_map(|i| space.tuple(i)).collect();
            assert_eq!(via_index, probe_tuples(&q), "{q}");
            assert_eq!(space.iter().collect::<Vec<_>>(), probe_tuples(&q), "{q}");
        }
    }

    #[test]
    fn probe_space_boolean_query_has_raw_len_one() {
        let q = ConjunctiveQuery::from_atom_list(
            "b",
            vec![],
            vec![Atom::new("R", vec![Term::constant("a")])],
        );
        let space = ProbeSpace::new(&q);
        assert_eq!(space.raw_len(), 1);
        assert_eq!(space.tuple(0), Some(Vec::new()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn probe_space_rejects_out_of_range_indices() {
        let q = paper_examples::section3_query_q1();
        let space = ProbeSpace::new(&q);
        let _ = space.tuple(space.raw_len());
    }

    #[test]
    fn probe_tuple_count_grows_with_domain_and_arity() {
        // q(x1,x2,x3) ← R(x1,x2,x3): 27 probe tuples (3 canonical constants).
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x1"), v("x2"), v("x3")],
            vec![Atom::new("R", vec![v("x1"), v("x2"), v("x3")])],
        );
        assert_eq!(probe_tuples(&q).len(), 27);
    }
}
