//! Simple undirected graphs and a brute-force 3-colorability oracle.
//!
//! Used by the Theorem 5.4 reduction (NP-hardness of bag containment via
//! graph 3-colorability) and by the E5 benchmark workloads.

use std::collections::BTreeSet;

use rand::Rng;

/// An undirected graph on vertices `0..n` with no self-loops.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    vertices: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl Graph {
    /// The empty graph on `vertices` vertices.
    pub fn new(vertices: usize) -> Self {
        Graph { vertices, edges: BTreeSet::new() }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges, normalised as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range vertices.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self-loops are not allowed");
        assert!(u < self.vertices && v < self.vertices, "vertex out of range");
        self.edges.insert((u.min(v), u.max(v)));
    }

    /// `true` iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The cycle `C_n` (requires `n ≥ 3`).
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycles need at least three vertices");
        let mut g = Graph::new(n);
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
        g
    }

    /// The complete bipartite graph `K_{a,b}` (always 2-colorable).
    pub fn complete_bipartite(a: usize, b: usize) -> Self {
        let mut g = Graph::new(a + b);
        for u in 0..a {
            for v in 0..b {
                g.add_edge(u, a + v);
            }
        }
        g
    }

    /// An Erdős–Rényi random graph `G(n, p)`.
    pub fn random(n: usize, edge_probability: f64, rng: &mut impl Rng) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(edge_probability.clamp(0.0, 1.0)) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Decides 3-colorability by backtracking (exponential; fine for the
    /// small graphs used to cross-check the bag-containment reduction).
    pub fn is_three_colorable(&self) -> bool {
        self.find_three_coloring().is_some()
    }

    /// Finds a proper 3-coloring if one exists (colors are `0..3`).
    pub fn find_three_coloring(&self) -> Option<Vec<u8>> {
        let mut colors = vec![u8::MAX; self.vertices];
        if self.color_from(0, &mut colors) {
            Some(colors)
        } else {
            None
        }
    }

    fn color_from(&self, vertex: usize, colors: &mut Vec<u8>) -> bool {
        if vertex == self.vertices {
            return true;
        }
        // Symmetry breaking: the first vertex only tries color 0, the second
        // only colors 0/1.
        let max_color = (vertex.min(2) + 1) as u8;
        for color in 0..max_color.max(1) {
            if self.neighbors(vertex).all(|n| colors[n] != color) {
                colors[vertex] = color;
                if self.color_from(vertex + 1, colors) {
                    return true;
                }
                colors[vertex] = u8::MAX;
            }
        }
        // Also allow all three colors when symmetry breaking was too strict
        // (only vertices beyond the second get the full palette above).
        if vertex >= 2 {
            for color in max_color..3 {
                if self.neighbors(vertex).all(|n| colors[n] != color) {
                    colors[vertex] = color;
                    if self.color_from(vertex + 1, colors) {
                        return true;
                    }
                    colors[vertex] = u8::MAX;
                }
            }
        }
        false
    }

    /// Verifies that a coloring is proper (adjacent vertices differ).
    pub fn is_proper_coloring(&self, colors: &[u8]) -> bool {
        colors.len() == self.vertices && self.edges.iter().all(|&(u, v)| colors[u] != colors[v])
    }

    fn neighbors(&self, vertex: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.iter().filter_map(move |&(u, v)| {
            if u == vertex {
                Some(v)
            } else if v == vertex {
                Some(u)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_queries() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0); // duplicate, normalised away
        g.add_edge(2, 3);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_are_rejected() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    fn coloring_known_graphs() {
        // Triangles and odd cycles are 3-colorable; K4 is not.
        assert!(Graph::complete(3).is_three_colorable());
        assert!(!Graph::complete(4).is_three_colorable());
        assert!(Graph::cycle(5).is_three_colorable());
        assert!(Graph::cycle(6).is_three_colorable());
        assert!(Graph::complete_bipartite(3, 4).is_three_colorable());
        // The empty graph and tiny graphs are trivially colorable.
        assert!(Graph::new(0).is_three_colorable());
        assert!(Graph::new(5).is_three_colorable());
        assert!(Graph::complete(2).is_three_colorable());
    }

    #[test]
    fn colorings_are_proper() {
        for g in [Graph::cycle(7), Graph::complete(3), Graph::complete_bipartite(2, 5)] {
            let coloring = g.find_three_coloring().expect("colorable");
            assert!(g.is_proper_coloring(&coloring));
            assert!(coloring.iter().all(|&c| c < 3));
        }
        assert!(Graph::complete(4).find_three_coloring().is_none());
    }

    #[test]
    fn k4_plus_isolated_vertices_still_not_colorable() {
        let mut g = Graph::new(6);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        assert!(!g.is_three_colorable());
    }

    #[test]
    fn random_graphs_are_reproducible() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = Graph::random(10, 0.4, &mut rng1);
        let b = Graph::random(10, 0.4, &mut rng2);
        assert_eq!(a, b);
        let dense = Graph::random(8, 1.0, &mut rng1);
        assert_eq!(dense.edge_count(), 28);
        let empty = Graph::random(8, 0.0, &mut rng1);
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn improper_coloring_detected() {
        let g = Graph::complete(3);
        assert!(!g.is_proper_coloring(&[0, 0, 1]));
        assert!(g.is_proper_coloring(&[0, 1, 2]));
        assert!(!g.is_proper_coloring(&[0, 1]));
    }
}
