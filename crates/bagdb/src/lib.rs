//! # dioph-bagdb — a bag relational engine
//!
//! Set and bag database instances plus conjunctive-query evaluation under
//! both semantics, following Section 2 (in particular Equation 2) of
//! *"Attacking Diophantus"* (PODS 2019).
//!
//! The engine plays three roles in the reproduction:
//!
//! 1. it re-computes the paper's worked evaluation examples exactly
//!    (experiment E1);
//! 2. it *independently verifies* the counterexample bags extracted by the
//!    containment decider — the witness produced via the Diophantine
//!    machinery is re-evaluated here with plain Equation-2 semantics;
//! 3. it provides the workload substrate for the sound-but-incomplete
//!    random-refutation baseline (experiment E8).
//!
//! ```
//! use dioph_bagdb::{BagInstance, bag_answer_multiplicity};
//! use dioph_cq::{paper_examples, Term};
//! use dioph_arith::Natural;
//!
//! // The paper's Section 2 example: qµ(c1, c2) = 10.
//! let q = paper_examples::section2_query_q3();
//! let bag = BagInstance::from_u64_multiplicities(paper_examples::section2_bag());
//! let c = |s: &str| Term::constant(s);
//! assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("c1"), c("c2")]), Natural::from(10u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enumerate;
mod evaluate;
mod instance;

pub use enumerate::{bounded_bag_count, enumerate_bounded_bags, ground_atoms, BoundedBags};
pub use evaluate::{
    bag_answer_multiplicity, bag_answers, bag_containment_holds_on, is_set_answer, set_answers,
    ucq_bag_answers, ucq_set_answers, BagViolation,
};
pub use instance::{BagInstance, SetInstance};
