//! Atoms `R(t1, …, tn)` over relation names and terms.

use core::fmt;
use std::collections::BTreeSet;

use crate::term::Term;

/// An atom: a relation name applied to a tuple of terms.
///
/// A *ground* atom (a.k.a. a fact) has no variables; relation instances and
/// canonical instances are sets of ground atoms.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    relation: String,
    terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a relation name and its argument terms.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom { relation: relation.into(), terms }
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The argument terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The arity (number of arguments).
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the atom contains no variables (it is a fact).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_constant)
    }

    /// The set of variable names occurring in the atom.
    pub fn variables(&self) -> BTreeSet<String> {
        self.terms.iter().filter_map(|t| t.as_var().map(str::to_string)).collect()
    }

    /// The set of constants (language and canonical) occurring in the atom.
    pub fn constants(&self) -> BTreeSet<Term> {
        self.terms.iter().filter(|t| t.is_constant()).cloned().collect()
    }

    /// Applies the `can(·)` bijection to every variable, producing the ground
    /// atom used in canonical instances.
    pub fn canonicalize(&self) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self.terms.iter().map(Term::canonicalize).collect(),
        }
    }

    /// `true` iff the two atoms share relation name and arity (so they could
    /// potentially be unified / matched).
    pub fn same_schema(&self, other: &Atom) -> bool {
        self.relation == other.relation && self.arity() == other.arity()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom_rxy() -> Atom {
        Atom::new("R", vec![Term::var("x"), Term::var("y")])
    }

    #[test]
    fn accessors() {
        let a = atom_rxy();
        assert_eq!(a.relation(), "R");
        assert_eq!(a.arity(), 2);
        assert!(!a.is_ground());
        assert_eq!(a.variables(), BTreeSet::from(["x".to_string(), "y".to_string()]));
        assert!(a.constants().is_empty());
    }

    #[test]
    fn ground_atoms() {
        let fact = Atom::new("R", vec![Term::constant("c1"), Term::constant("c2")]);
        assert!(fact.is_ground());
        assert!(fact.variables().is_empty());
        assert_eq!(fact.constants().len(), 2);
        let half = Atom::new("R", vec![Term::var("x"), Term::constant("c2")]);
        assert!(!half.is_ground());
    }

    #[test]
    fn canonicalisation() {
        let a = Atom::new("R", vec![Term::var("x"), Term::constant("c")]);
        let canon = a.canonicalize();
        assert!(canon.is_ground());
        assert_eq!(canon.terms()[0], Term::canon("x"));
        assert_eq!(canon.terms()[1], Term::constant("c"));
    }

    #[test]
    fn schema_compatibility() {
        let a = atom_rxy();
        let b = Atom::new("R", vec![Term::constant("c1"), Term::constant("c2")]);
        let c = Atom::new("P", vec![Term::var("x"), Term::var("y")]);
        let d = Atom::new("R", vec![Term::var("x")]);
        assert!(a.same_schema(&b));
        assert!(!a.same_schema(&c));
        assert!(!a.same_schema(&d));
    }

    #[test]
    fn display() {
        let a = Atom::new("R", vec![Term::var("x1"), Term::constant("c2"), Term::canon("y")]);
        assert_eq!(a.to_string(), "R(x1, 'c2', ^y)");
        let nullary = Atom::new("T", vec![]);
        assert_eq!(nullary.to_string(), "T()");
    }

    #[test]
    fn equality_and_ordering() {
        // Atoms are value types: same relation and terms means equal.
        assert_eq!(atom_rxy(), Atom::new("R", vec![Term::var("x"), Term::var("y")]));
        let mut set = BTreeSet::new();
        set.insert(atom_rxy());
        set.insert(atom_rxy());
        assert_eq!(set.len(), 1);
    }
}
