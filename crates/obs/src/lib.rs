//! # dioph-obs — unified observability for the diophantus workspace
//!
//! Std-only, dependency-free instrumentation, in three layers:
//!
//! * [`registry`] — the counter/gauge registry: relaxed-atomic cells under
//!   stable dotted names with snapshot/delta semantics. This crate is the
//!   **one sanctioned home for atomics** in the workspace (enforced by
//!   `tools/forbid.sh`); other crates bump registry cells instead of
//!   declaring their own.
//! * [`phase`] — lightweight spans over the real pipeline phases
//!   (parse → check → compile → probe → lp → merge), aggregated into
//!   per-phase wall-clock + invocation counts. Off by default; one relaxed
//!   load per span when disabled.
//! * [`trace`] — Chrome trace-event collection: with tracing enabled every
//!   span also lands on its thread's track, and [`trace::Trace::to_chrome_json`]
//!   renders a file loadable in `chrome://tracing`/Perfetto.
//! * [`pool`] — per-worker claim/busy statistics from the probe and batch
//!   pools (the starvation evidence the work-stealing refactor needs).
//!
//! The full counter and phase catalogue, with stability guarantees, lives
//! in `docs/metrics.md` (rendered below) — every example there is compiled
//! and run as a doctest of this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![doc = include_str!("../../../docs/metrics.md")]

pub mod phase;
pub mod pool;
pub mod registry;
pub mod trace;

pub use phase::{span, Phase, PhaseStat, Span};
pub use registry::{counter, counters, snapshot, Counter, Kind, MetricsSnapshot, Stability};
