//! E8 — the complete decision procedure vs sound-but-incomplete random-bag
//! refutation.
//!
//! On a *non-contained* instance whose violating bags are sparse (the paper's
//! Section 3 running example), random sampling needs many Equation-2
//! evaluations before it stumbles on a witness — if it ever does — while the
//! LP-based decider produces one directly. On *contained* instances the
//! refuter can never terminate with an answer at all; the bench shows the
//! cost of its wasted attempts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::{bench_rng, contained_instance, refutation_instance};
use dioph_containment::{Algorithm, BagContainmentDecider};
use dioph_workloads::{refute_by_random_bags, RefutationConfig};

fn bench_not_contained_instance(c: &mut Criterion) {
    let (containee, containing) = refutation_instance();
    let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);

    // Report how often random search succeeds at various budgets (the "table"
    // of E8), then time both approaches.
    for attempts in [10usize, 100, 1_000] {
        let mut rng = bench_rng();
        let config = RefutationConfig { attempts, max_multiplicity: 10 };
        let hits = (0..20)
            .filter(|_| refute_by_random_bags(&containee, &containing, config, &mut rng).is_some())
            .count();
        println!(
            "E8: random refuter with {attempts:>5} attempts finds a witness in {hits}/20 runs"
        );
    }

    let mut group = c.benchmark_group("E8/running_example");
    group.bench_function("complete_decider", |b| {
        b.iter(|| decider.decide(black_box(&containee), black_box(&containing)).unwrap());
    });
    for attempts in [10usize, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("random_refuter", attempts),
            &attempts,
            |b, &attempts| {
                let config = RefutationConfig { attempts, max_multiplicity: 10 };
                let mut rng = bench_rng();
                b.iter(|| {
                    black_box(refute_by_random_bags(&containee, &containing, config, &mut rng))
                });
            },
        );
    }
    group.finish();
}

fn bench_contained_instance(c: &mut Criterion) {
    // On a contained instance the refuter burns its whole budget for nothing;
    // the complete decider proves containment outright.
    let (containee, containing) = contained_instance(3, 11);
    let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);
    let mut group = c.benchmark_group("E8/contained_instance");
    group.bench_function("complete_decider", |b| {
        b.iter(|| decider.decide(black_box(&containee), black_box(&containing)).unwrap());
    });
    group.bench_function("random_refuter_200_attempts", |b| {
        let config = RefutationConfig { attempts: 200, max_multiplicity: 6 };
        let mut rng = bench_rng();
        b.iter(|| black_box(refute_by_random_bags(&containee, &containing, config, &mut rng)));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_not_contained_instance, bench_contained_instance
}
criterion_main!(benches);
