//! Exact rational phase-1 simplex.
//!
//! This is the scalable feasibility engine backing Theorem 4.2 of the paper
//! (polynomial-time decidability of the Diophantine-solution problem for
//! MPIs). It decides whether the polyhedron
//!
//! ```text
//!     { x ∈ ℚⁿ  :  A·x ≥ b,  x ≥ 0 }
//! ```
//!
//! is non-empty and, if so, returns a rational point inside it. All pivoting
//! is performed with exact [`Rational`] arithmetic; Bland's rule guarantees
//! termination (no cycling).
//!
//! Strict inequalities are handled one level up (by the
//! [`StrictHomogeneousSystem`](crate::StrictHomogeneousSystem) machinery)
//! via the homogeneity of the systems produced by the paper's reduction:
//! `A·x > 0, x ≥ 0` is rationally feasible iff `A·x ≥ 1, x ≥ 0` is.

use dioph_arith::Rational;

/// Result of a phase-1 simplex run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexOutcome {
    /// A feasible point `x ≥ 0` with `A·x ≥ b` was found.
    Feasible(Vec<Rational>),
    /// The polyhedron is empty.
    Infeasible,
}

impl SimplexOutcome {
    /// Returns the witness if feasible.
    pub fn witness(&self) -> Option<&[Rational]> {
        match self {
            SimplexOutcome::Feasible(w) => Some(w),
            SimplexOutcome::Infeasible => None,
        }
    }

    /// `true` iff a feasible point was found.
    pub fn is_feasible(&self) -> bool {
        matches!(self, SimplexOutcome::Feasible(_))
    }
}

/// Negates every entry of a row in place: each value moves through the
/// owned `Neg`, which flips the sign bit and reuses the limb allocations
/// instead of rebuilding a cloned row.
fn negate_row(row: &mut [Rational]) {
    for v in row.iter_mut() {
        let value = std::mem::take(v);
        *v = -value;
    }
}

/// Finds `x ≥ 0` with `A·x ≥ b` (row-wise), if such a point exists.
///
/// `a` is a dense row-major matrix; every row must have the same length.
///
/// # Panics
/// Panics if the number of rows of `a` differs from the length of `b`, or if
/// the rows of `a` have inconsistent lengths.
pub fn feasible_point(a: &[Vec<Rational>], b: &[Rational]) -> SimplexOutcome {
    assert_eq!(a.len(), b.len(), "row count mismatch between A and b");
    let m = a.len();
    let n = a.first().map_or(0, |r| r.len());
    for row in a {
        assert_eq!(row.len(), n, "ragged matrix passed to simplex");
    }
    if m == 0 {
        return SimplexOutcome::Feasible(vec![Rational::zero(); n]);
    }

    // Standard form: for every row  a_i·x - s_i = b_i  with s_i ≥ 0.
    // Rows are normalised so the right-hand side is non-negative; rows that
    // end up with rhs = 0 or that originally had b_i ≤ 0 can use the surplus
    // (or its negation, a slack) as the initial basic variable, all other
    // rows receive an artificial variable.
    //
    // Column layout: [ x (n) | s (m) | artificials (k) ].
    let mut rows: Vec<Vec<Rational>> = Vec::with_capacity(m);
    let mut rhs: Vec<Rational> = Vec::with_capacity(m);
    let mut needs_artificial: Vec<bool> = Vec::with_capacity(m);

    for (i, (a_row, b_i)) in a.iter().zip(b).enumerate() {
        let mut row: Vec<Rational> = Vec::with_capacity(n + m);
        // a_i·x - s_i = b_i
        row.extend(a_row.iter().cloned());
        for j in 0..m {
            row.push(if j == i { -&Rational::one() } else { Rational::zero() });
        }
        let mut rhs_i = b_i.clone();
        if rhs_i.is_negative() {
            // Multiply the whole equation by -1 so the rhs is non-negative;
            // the surplus column then carries +1 and can serve as the basis.
            negate_row(&mut row);
            rhs_i = -rhs_i;
            needs_artificial.push(false);
        } else if rhs_i.is_zero() {
            // rhs already zero: the surplus variable (value 0) can be basic
            // only if its coefficient is +1; flip the row to make it so.
            negate_row(&mut row);
            needs_artificial.push(false);
        } else {
            needs_artificial.push(true);
        }
        rows.push(row);
        rhs.push(rhs_i);
    }

    let artificial_rows: Vec<usize> = (0..m).filter(|&i| needs_artificial[i]).collect();
    let k = artificial_rows.len();
    let total = n + m + k;

    // Extend rows with artificial columns and record the initial basis.
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    {
        let mut art_idx = 0;
        for i in 0..m {
            for &ar in &artificial_rows {
                rows[i].push(if ar == i { Rational::one() } else { Rational::zero() });
            }
            if needs_artificial[i] {
                basis.push(n + m + art_idx);
                art_idx += 1;
            } else {
                // The surplus/slack column of this row has coefficient +1.
                basis.push(n + i);
            }
        }
    }

    // Cost: 1 for artificial variables, 0 otherwise (phase-1 objective).
    let cost = |j: usize| -> Rational {
        if j >= n + m {
            Rational::one()
        } else {
            Rational::zero()
        }
    };

    // Bring the tableau into basic form: basic columns must be unit columns.
    // By construction they already are (surplus ±1 flipped to +1, artificials +1),
    // except that surplus columns for flipped rows are +1 only in their own row
    // (they are zero elsewhere), so nothing to do.

    let max_iterations = 50_usize.saturating_mul((total + 1) * (m + 1)).max(10_000);
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "simplex exceeded its iteration budget (cycling should be impossible with Bland's rule)"
        );

        // Reduced costs: r_j = c_j - Σ_i c_{basis[i]} * T[i][j]. The phase-1
        // cost vector is 0/1 (1 exactly on artificial columns), so the sum
        // collapses to plain subtractions over the artificial-basic rows —
        // no Rational multiplications at all.
        // Entering variable: smallest index with negative reduced cost (Bland).
        let mut entering: Option<usize> = None;
        for j in 0..total {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost(j);
            for (row, &basic) in rows.iter().zip(&basis) {
                if basic >= n + m && !row[j].is_zero() {
                    r -= &row[j];
                }
            }
            if r.is_negative() {
                entering = Some(j);
                break;
            }
        }

        let Some(enter) = entering else {
            // Optimal: compute the objective value (sum of artificial basics).
            let mut obj = Rational::zero();
            for i in 0..m {
                if basis[i] >= n + m {
                    obj += &rhs[i];
                }
            }
            if !obj.is_zero() {
                return SimplexOutcome::Infeasible;
            }
            // Feasible: read off the x-part of the basic solution.
            let mut x = vec![Rational::zero(); n];
            for i in 0..m {
                if basis[i] < n {
                    x[basis[i]] = rhs[i].clone();
                }
            }
            return SimplexOutcome::Feasible(x);
        };

        // Ratio test (Bland tie-breaking by smallest basic variable index).
        let mut leaving: Option<usize> = None;
        let mut best_ratio: Option<Rational> = None;
        for i in 0..m {
            if rows[i][enter].is_positive() {
                let ratio = &rhs[i] / &rows[i][enter];
                let better = match &best_ratio {
                    None => true,
                    Some(best) => {
                        ratio < *best
                            || (ratio == *best
                                && basis[i] < basis[leaving.expect("leaving set with best_ratio")])
                    }
                };
                if better {
                    best_ratio = Some(ratio);
                    leaving = Some(i);
                }
            }
        }

        let Some(leave) = leaving else {
            // The phase-1 objective is bounded below by zero, so an unbounded
            // direction cannot occur; defensively treat it as infeasibility.
            unreachable!("phase-1 simplex objective cannot be unbounded");
        };

        // Pivot on (leave, enter), updating rows strictly in place. The
        // tableaus arising from the paper's strict homogeneous systems are
        // sparse, so zero entries are skipped before any Rational is built
        // and a unit pivot skips the whole normalisation pass.
        let pivot = rows[leave][enter].clone();
        if !pivot.is_one() {
            for v in rows[leave].iter_mut() {
                if !v.is_zero() {
                    *v = &*v / &pivot;
                }
            }
            if !rhs[leave].is_zero() {
                rhs[leave] = &rhs[leave] / &pivot;
            }
        }
        for i in 0..m {
            if i == leave || rows[i][enter].is_zero() {
                continue;
            }
            // After elimination the enter column of this row is exactly zero
            // (the normalised leave row has a 1 there), so taking the factor
            // out of the tableau writes the final value for free — no clone.
            let factor = std::mem::take(&mut rows[i][enter]);
            let (leave_row, target_row) = if leave < i {
                let (head, tail) = rows.split_at_mut(i);
                (&head[leave], &mut tail[0])
            } else {
                let (head, tail) = rows.split_at_mut(leave);
                (&tail[0], &mut head[i])
            };
            for (column, (target, pivot_coeff)) in
                target_row.iter_mut().zip(leave_row.iter()).enumerate()
            {
                if column == enter || pivot_coeff.is_zero() {
                    continue;
                }
                let delta = &factor * pivot_coeff;
                *target -= &delta;
            }
            if !rhs[leave].is_zero() {
                let delta = &factor * &rhs[leave];
                rhs[i] -= &delta;
            }
        }
        basis[leave] = enter;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_i64s(n, d)
    }

    fn mat(rows: &[&[i64]]) -> Vec<Vec<Rational>> {
        rows.iter().map(|row| row.iter().map(|&v| Rational::from(v)).collect()).collect()
    }

    fn vec_r(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| Rational::from(v)).collect()
    }

    fn assert_feasible(a: &[Vec<Rational>], b: &[Rational]) -> Vec<Rational> {
        match feasible_point(a, b) {
            SimplexOutcome::Feasible(x) => {
                for (row, bi) in a.iter().zip(b) {
                    let lhs = crate::system::dot(row, &x);
                    assert!(lhs >= *bi, "row violated: {lhs} < {bi}");
                }
                for v in &x {
                    assert!(!v.is_negative(), "negative component in witness");
                }
                x
            }
            SimplexOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn trivial_origin_is_feasible() {
        // A x >= b with b <= 0 is satisfied by x = 0.
        let a = mat(&[&[1, 2], &[3, -1]]);
        let b = vec_r(&[0, -5]);
        let x = assert_feasible(&a, &b);
        assert_eq!(x, vec_r(&[0, 0]));
    }

    #[test]
    fn single_constraint_needs_positive_x() {
        // x0 + x1 >= 3
        let a = mat(&[&[1, 1]]);
        let b = vec_r(&[3]);
        assert_feasible(&a, &b);
    }

    #[test]
    fn infeasible_negative_coefficients() {
        // -x0 - x1 >= 1 with x >= 0 is impossible.
        let a = mat(&[&[-1, -1]]);
        let b = vec_r(&[1]);
        assert_eq!(feasible_point(&a, &b), SimplexOutcome::Infeasible);
    }

    #[test]
    fn mixed_system() {
        //  x0 - x1 >= 2
        // -x0 + 3x1 >= 1
        let a = mat(&[&[1, -1], &[-1, 3]]);
        let b = vec_r(&[2, 1]);
        assert_feasible(&a, &b);
    }

    #[test]
    fn infeasible_opposing_rows() {
        //  x0 >= 5  and  -x0 >= -2  (i.e. x0 <= 2)
        let a = mat(&[&[1], &[-1]]);
        let b = vec_r(&[5, -2]);
        assert_eq!(feasible_point(&a, &b), SimplexOutcome::Infeasible);
    }

    #[test]
    fn paper_running_example() {
        // Homogeneous system from the paper's 3-MPI scaled to >= 1:
        //   -5e1 +  e2 + 3e3 >= 1
        //   -3e1 -  e2 + 3e3 >= 1
        //   - e1 +  e2 -  e3 >= 1
        let a = mat(&[&[-5, 1, 3], &[-3, -1, 3], &[-1, 1, -1]]);
        let b = vec_r(&[1, 1, 1]);
        let x = assert_feasible(&a, &b);
        // The paper's solution direction (0, 2, 1) also satisfies the scaled system.
        assert!(crate::system::dot(&a[0], &vec_r(&[0, 2, 1])) >= r(1, 1));
        assert!(!x.iter().all(|v| v.is_zero()));
    }

    #[test]
    fn infeasible_homogeneous_row_of_zeros() {
        // 0·x >= 1 is impossible.
        let a = mat(&[&[0, 0, 0]]);
        let b = vec_r(&[1]);
        assert_eq!(feasible_point(&a, &b), SimplexOutcome::Infeasible);
    }

    #[test]
    fn zero_rhs_rows_are_fine() {
        // x0 - x1 >= 0, x1 >= 2.
        let a = mat(&[&[1, -1], &[0, 1]]);
        let b = vec_r(&[0, 2]);
        assert_feasible(&a, &b);
    }

    #[test]
    fn empty_system() {
        let x = feasible_point(&[], &[]);
        assert_eq!(x, SimplexOutcome::Feasible(vec![]));
    }

    #[test]
    fn rational_coefficients() {
        // (1/2)x0 >= 3/2  =>  x0 >= 3.
        let a = vec![vec![r(1, 2)]];
        let b = vec![r(3, 2)];
        let x = assert_feasible(&a, &b);
        assert!(x[0] >= r(3, 1));
    }

    #[test]
    fn larger_random_like_instance() {
        // A structured 5x4 instance with known solution (1, 2, 3, 4).
        let a =
            mat(&[&[1, 1, 1, 1], &[2, -1, 0, 1], &[-1, 2, -1, 1], &[0, 0, 3, -2], &[1, 0, 0, 0]]);
        let sol = vec_r(&[1, 2, 3, 4]);
        let b: Vec<Rational> = a.iter().map(|row| crate::system::dot(row, &sol)).collect();
        assert_feasible(&a, &b);
    }
}
