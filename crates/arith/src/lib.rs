//! # dioph-arith — exact arithmetic substrate
//!
//! Arbitrary-precision natural numbers, signed integers and rationals used
//! throughout the `diophantus` workspace (the reproduction of
//! *"Attacking Diophantus: Solving a Special Case of Bag Containment"*,
//! PODS 2019).
//!
//! The bag-containment decision procedure manipulates quantities that
//! overflow machine integers almost immediately:
//!
//! * multiplicities of answer tuples under bag semantics are *products of
//!   powers* of atom multiplicities (Equation 2 of the paper);
//! * counterexample extraction raises a base `ζ*` to exponents obtained from
//!   an LP solution (`ξ_j = ζ*^{d_j}`);
//! * Fourier–Motzkin elimination and exact simplex pivoting require exact
//!   rational arithmetic to stay sound.
//!
//! This crate provides the three number types — [`Natural`], [`Integer`] and
//! [`Rational`] — with exact, panic-on-misuse semantics and no external
//! dependencies.
//!
//! ## Hybrid representation
//!
//! While the *semantics* are arbitrary precision, the *representation* is
//! hybrid: [`Natural`] stores values up to `u64::MAX` inline, [`Integer`]
//! stores the whole `i64` range inline, and both promote to the little-endian
//! limb form only when a result genuinely leaves the machine range. The forms
//! are canonical (a value is always stored in the smallest representation
//! that fits), so equality, ordering and hashing never observe the split.
//! [`Rational`] adds a machine-word fast path on top: cross-multiplications
//! run in checked `i128`/`u128` arithmetic with a binary-GCD reduction, and
//! fall back to the exact big path only on overflow. The [`stats`] module
//! counts how often each route is taken.
//!
//! ```
//! use dioph_arith::{Natural, Integer, Rational};
//!
//! // 2^200 is far beyond u128 but exact here.
//! let big = Natural::from(2u64).pow(200);
//! assert_eq!(big.to_decimal_string().len(), 61);
//!
//! // Exact rational arithmetic.
//! let third = Rational::from_i64s(1, 3);
//! assert_eq!(&(&third + &third) + &third, Rational::one());
//!
//! // Signed arithmetic.
//! assert_eq!(Integer::from(-3) * Integer::from(-4), Integer::from(12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod integer;
mod natural;
mod rational;
pub mod stats;

pub use integer::{Integer, ParseIntegerError, Sign};
pub use natural::{Natural, ParseNaturalError};
pub use rational::{ParseRationalError, Rational};
