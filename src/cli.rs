//! The `diophantus` command-line interface.
//!
//! The binary (`src/bin/diophantus.rs`) is a thin wrapper around [`run`];
//! everything — argument parsing included — is hand-rolled here so the CLI
//! stays as dependency-free as the rest of the workspace (the build
//! environment has no crates.io access).
//!
//! The subcommands drive the pipeline end to end:
//!
//! * `decide` — parse datalog query pairs from files or stdin and decide
//!   set/bag/bag-set containment, printing verdicts and counterexample bags;
//! * `equiv` — decide bag equivalence (mutual containment) per pair;
//! * `batch` — the streaming front-end of `dioph-engine`: decide a
//!   continuous stream of pairs on a worker pool (`--jobs`), emitting one
//!   verdict line per pair (JSON lines with `--json`), optionally surviving
//!   per-pair failures (`--keep-going`);
//! * `verify` — re-check the counterexample bags of a `--json` output file
//!   with the independent Equation-2 bag evaluator;
//! * `fuzz` — the differential fuzzing oracle of `dioph-fuzz`: seeded
//!   random pairs are decided through the probe pool and cross-checked
//!   against brute-force bag-database ground truth, certificate replay and
//!   Chandra–Merlin set containment; disagreements are shrunk to minimal
//!   reproducers;
//! * `gen` — emit seed-reproducible random workloads (specialisation pairs,
//!   3-colorability reductions, E4/E6/E9 shapes, optimizer join shapes) in
//!   the same datalog notation `decide` reads;
//! * `bench` — time a workload file and print per-pair latency statistics.
//!
//! `decide` and `equiv` also take `--jobs N`: with more than one job they
//! route through [`DecisionEngine`], whose worker pool claims (pair,
//! probe-index) units from one shared queue — verdicts are bit-identical
//! to the sequential path.
//!
//! Every deciding subcommand has a `--json` mode whose output embeds the
//! [`BagContainment::to_json`] /
//! [`Counterexample::to_json`](dioph_containment::Counterexample::to_json)
//! certificates. The input grammar is documented in `docs/grammar.md`.

use std::fmt::Write as _;
use std::io::{BufReader, Read, Write};
use std::time::Instant;

use dioph_analyze::{analyze_source, containee_fragment_diagnostics, LintConfig, Severity};
use dioph_arith::Natural;
use dioph_bagdb::{bag_answer_multiplicity, BagInstance};
use dioph_containment::{
    bag_set_containment, json, set_containment, Algorithm, BagContainment, BagContainmentDecider,
    CompiledPair, ContainmentError, FeasibilityEngine, SetContainment,
};
use dioph_cq::{parse_program_spanned, parse_query, Atom, ConjunctiveQuery, SpannedQuery, Term};
use dioph_engine::{DecisionEngine, EngineConfig, JobReader, Verdict};
use dioph_fuzz::{run_fuzz, run_replay, FuzzConfig, Injection};
use dioph_workloads::suite::{generate_pairs, WorkloadKind, WorkloadPair};

use crate::jsonv::Json;

/// Default budget for the `guess-check` enumeration algorithm.
const DEFAULT_BUDGET: u64 = 1_000_000;
/// Default seed for `gen` (the same constant the benchmark harness uses).
const DEFAULT_SEED: u64 = 0x2019_0630;
/// Default number of pairs `gen` emits.
const DEFAULT_COUNT: usize = 5;
/// Default number of timed runs per pair in `bench`.
const DEFAULT_REPEAT: usize = 5;

const HELP: &str = "\
diophantus — bag containment for conjunctive queries (PODS 2019)

USAGE:
    diophantus <COMMAND> [OPTIONS] [FILE...]

COMMANDS:
    decide    Decide containment for consecutive (containee, containing)
              query pairs read from FILEs (or stdin). Non-containment
              verdicts come with an independently verified counterexample
              bag.
    equiv     Decide bag equivalence (containment in both directions) for
              each pair.
    batch     Decide a continuous stream of pairs on a worker pool, one
              verdict line per pair, emitted in input order as soon as each
              pair (and all before it) is done. Compilation is shared across
              identical pairs in the stream. An empty stream is not an error.
    check     Statically analyse query programs without deciding anything:
              span-carrying lints with stable codes (D001 unsafe-query,
              D013 duplicate-atom, …), a decidability-fragment label per
              pair, and static cost advisories. Exits with the worst
              severity found: 0 (clean or notes), 1 (warnings), 2 (errors).
    verify    Re-check the counterexample bags recorded in `--json` output
              (from decide, equiv, batch or fuzz) with the independent
              Equation-2 bag evaluator; `--metrics` blocks are structurally
              validated alongside. Exits 1 if any certificate fails.
    fuzz      Differential fuzzing: seeded random pairs in the paper
              fragment are decided through the probe pool and cross-checked
              against brute-force bag-database ground truth, certificate
              replay and set containment as a necessary condition.
              Disagreements are shrunk to minimal reproducers; exits 1 if
              any disagreement survives.
    gen       Emit a seed-reproducible random workload in the same datalog
              notation `decide` reads.
    bench     Time the decision procedure on a workload and print per-pair
              latency statistics.
    help      Show this message.
    version   Show the version.

OPTIONS (decide, equiv, batch, bench):
    --bag                Bag semantics (default).
    --set                Set semantics (Chandra–Merlin); decide/equiv only.
    --bag-set            Bag-set semantics (bag queries over set databases);
                         decide/equiv only. Requires a projection-free
                         containee, where the verdict coincides with set
                         containment (the paper's Section 3 remark).
    --algorithm <NAME>   most-general (default) | all-probes | guess-check
    --budget <N>         Enumeration budget for guess-check (default 1000000).
    --engine <NAME>      simplex (default) | fourier-motzkin
    --lp-route <NAME>    Pivot arithmetic of the simplex engine:
                         simplex (default, exact rationals) | bareiss
                         (fraction-free integers — the route for systems
                         whose pivot values outgrow machine words) | auto
                         (picks per system). Verdicts, witnesses and JSON
                         certificates are byte-identical for every route.
    --jobs <N>           Worker threads (default 1). Every mode schedules
                         (pair, probe-index) units from one shared queue;
                         batch lets the pool drain each pair's probe space
                         in chunks. Verdicts are identical for any N.
    --json               Machine-readable output (JSON lines for batch).
    --metrics            Append this command's observability counters to the
                         output: a human table, or a \"metrics\" member on
                         --json envelopes (batch emits one trailing
                         {\"metrics\":...} line). Deterministic counters are
                         identical for any --jobs and --lp-route choice;
                         timings and per-worker figures are labelled
                         volatile. `verify` acknowledges the block.
    --trace-out <FILE>   Write a Chrome trace-event JSON timeline of the
                         pipeline phases (parse, check, compile, probe, LP,
                         merge) with one track per worker thread; load it in
                         chrome://tracing or Perfetto.

OPTIONS (batch):
    --keep-going         A pair that fails to read, parse or decide emits a
                         structured error line and the stream continues;
                         the exit status is still 1 if anything failed.

OPTIONS (check):
    --deny <LINT>        Promote a lint (code or name) to an error; the
                         special value `warnings` promotes every warning.
    --allow <LINT>       Suppress a lint entirely.
    -W, --warn <LINT>    Set a lint to warning (enables allow-by-default
                         lints like D010 unused-variable). The last flag
                         naming a lint wins. Codes and severities are
                         catalogued in docs/diagnostics.md.
    --json               One machine-readable document for the whole run.

OPTIONS (fuzz):
    --seed <S>           Master seed (default 538510896); every case and
                         database stream derives from it deterministically.
    --cases <N>          Generated cases (default 100); not with --replay.
    --max-adom <N>       Active-domain bound for random schema databases
                         (default 3).
    --max-mult <N>       Multiplicity bound for every swept bag (default 2).
    --samples <N>        Sampled bags when exhaustive enumeration is too
                         large, and the random-database budget (default 32).
    --replay <DIR>       Replay the *.dl corpus files in DIR (sorted by
                         name, consecutive pairs) instead of generating.
    --inject <BUG>       Self-test: corrupt the decider with flip-verdict or
                         tamper-certificate and prove the oracle catches it.
    --lp-route <NAME>    As for decide; the report is byte-identical across
                         routes and --jobs values by construction.
    --jobs <N>           Worker threads for the probe pool (default 1).
    --json               Machine-readable report; `diophantus verify`
                         re-checks its certificates and shrunk witnesses.
    --metrics            As for decide: counters on the report (a \"metrics\"
                         member under --json).
    --trace-out <FILE>   As for decide: Chrome trace-event JSON timeline.

OPTIONS (gen):
    <KIND>               spec (default) | inflated | contained | path |
                         expmap | threecol | chain | star | clique
    --count <N>          Number of pairs to emit (default 5).
    --size <K>           Size parameter: atom occurrences (spec, inflated,
                         contained), path length (path), log2 of the mapping
                         count (expmap), vertices (threecol, clique), chain
                         length (chain), rays (star).
    --seed <S>           RNG seed; output is byte-for-byte reproducible.
    --json               Machine-readable output.

OPTIONS (bench):
    --repeat <N>         Timed runs per pair (default 5).

INPUT FORMAT:
    Queries are written in the paper's datalog notation, one '.'-terminated
    query at a time; '%' and '#' start line comments:

        q(x) <- R^2(x, x).
        p(x) <- R(x, y), R(y, x).

    Queries are decided in consecutive pairs (first ⊑ second); each input
    file must therefore hold an even number of queries. The full
    grammar — multiplicities R^2(…), constants 'c1' and 42, canonical
    constants ^x, the `true` body — is documented in docs/grammar.md; the
    pipeline itself is described in ARCHITECTURE.md.

EXIT STATUS:
    0 on success (whatever the verdicts), 1 on input/decision errors,
    2 on usage errors. check maps its worst diagnostic severity to the
    same scale: notes 0, warnings 1, errors 2.
";

/// Runs the CLI with the given arguments (excluding the program name),
/// reading stdin if a reading subcommand receives no input files. Returns
/// the process exit code: 0 on success, 1 on input or decision errors, 2 on
/// usage errors.
pub fn run(args: &[String]) -> i32 {
    let mut stdout = std::io::stdout().lock();
    // `Stdin` (not the lock) because batch hands the reader to a feeder
    // thread, which needs `Send`.
    let code = match dispatch(args, &mut std::io::stdin(), &mut stdout) {
        Ok(()) => 0,
        // A closed stdout (e.g. `diophantus gen … | head`) is a normal way
        // for a pipeline to end, not an error worth a panic.
        Err(CliError::BrokenPipe) => 0,
        Err(CliError::Failure(message)) => {
            eprintln!("diophantus: {message}");
            1
        }
        Err(CliError::Reported) => 1,
        Err(CliError::Lints(code)) => code,
        Err(CliError::Usage(message)) => {
            eprintln!("diophantus: {message}\nRun `diophantus help` for usage.");
            2
        }
    };
    match stdout.flush() {
        Ok(()) => code,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => code,
        Err(e) => {
            eprintln!("diophantus: stdout: {e}");
            code.max(1)
        }
    }
}

enum CliError {
    /// Bad command line — exit code 2.
    Usage(String),
    /// Bad input or an undecidable pair — exit code 1.
    Failure(String),
    /// Exit code 1, but the diagnostic already went to stderr (a streaming
    /// command reporting mid-stream) — nothing more to print.
    Reported,
    /// The consumer closed stdout mid-stream — a clean exit, code 0.
    BrokenPipe,
    /// `check` found diagnostics; the report already went to stdout. Carries
    /// the exit code of the worst severity (1 warnings, 2 errors).
    Lints(i32),
}

type CliResult = Result<String, CliError>;

/// Writes `text`, translating a closed pipe into the clean-exit sentinel.
fn write_out(out: &mut dyn Write, text: &str) -> Result<(), CliError> {
    match out.write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Err(CliError::BrokenPipe),
        Err(e) => Err(CliError::Failure(format!("stdout: {e}"))),
    }
}

fn dispatch(
    args: &[String],
    stdin: &mut (dyn Read + Send),
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".to_string()));
    };
    let rendered = match command.as_str() {
        "decide" => cmd_decide(&args[1..], stdin, false),
        "equiv" => cmd_decide(&args[1..], stdin, true),
        // batch and verify stream to `out` themselves: their output must
        // appear as results arrive, not when the whole input is consumed.
        "batch" => return cmd_batch(&args[1..], stdin, out),
        "verify" => return cmd_verify(&args[1..], stdin, out),
        // fuzz writes its report itself: the verdict lines must reach the
        // user even when disagreements make the run exit non-zero.
        "fuzz" => return cmd_fuzz(&args[1..], out),
        // check writes its report itself: the diagnostics must reach the
        // user even when the run ends with a non-zero lint exit code.
        "check" => return cmd_check(&args[1..], stdin, out),
        "gen" => cmd_gen(&args[1..]),
        "bench" => cmd_bench(&args[1..], stdin),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        "version" | "--version" | "-V" => Ok(format!("diophantus {}\n", env!("CARGO_PKG_VERSION"))),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    write_out(out, &rendered?)
}

// ---------------------------------------------------------------------------
// Option parsing
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Semantics {
    Bag,
    Set,
    /// Bag queries over set-valued databases: for the projection-free
    /// containees the bag fragment admits, the verdict coincides with set
    /// containment (the paper's Section 3 remark), but the mode still
    /// enforces the fragment so out-of-scope pairs error instead of
    /// silently degrading to plain set semantics.
    BagSet,
}

impl Semantics {
    fn name(self) -> &'static str {
        match self {
            Semantics::Bag => "bag",
            Semantics::Set => "set",
            Semantics::BagSet => "bag-set",
        }
    }

    /// The containment symbol used in human-readable verdict lines.
    fn symbol(self) -> &'static str {
        match self {
            Semantics::Bag => "⊑b",
            Semantics::Set => "⊑s",
            Semantics::BagSet => "⊑bs",
        }
    }
}

struct DecideOpts {
    semantics: Semantics,
    algorithm: Algorithm,
    algorithm_name: &'static str,
    engine: FeasibilityEngine,
    engine_name: &'static str,
    json: bool,
    repeat: usize,
    repeat_set: bool,
    jobs: usize,
    jobs_set: bool,
    keep_going: bool,
    metrics: bool,
    trace_out: Option<String>,
    files: Vec<String>,
}

impl DecideOpts {
    /// The engine configuration these options select.
    fn engine_config(&self) -> EngineConfig {
        EngineConfig { jobs: self.jobs, algorithm: self.algorithm, engine: self.engine }
    }
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, CliError> {
    it.next().cloned().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

fn parse_count(text: &str, flag: &str) -> Result<usize, CliError> {
    text.parse().map_err(|_| CliError::Usage(format!("{flag} needs a number, got '{text}'")))
}

fn parse_decide_opts(args: &[String]) -> Result<DecideOpts, CliError> {
    let mut semantics = Semantics::Bag;
    let mut algorithm_name = "most-general".to_string();
    let mut algorithm_set = false;
    let mut budget = DEFAULT_BUDGET;
    let mut budget_set = false;
    let mut engine_name = "simplex".to_string();
    let mut engine_set = false;
    let mut route_name = "simplex".to_string();
    let mut route_set = false;
    let mut json = false;
    let mut repeat = DEFAULT_REPEAT;
    let mut repeat_set = false;
    let mut jobs = 1usize;
    let mut jobs_set = false;
    let mut keep_going = false;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bag" => semantics = Semantics::Bag,
            "--set" => semantics = Semantics::Set,
            "--bag-set" => semantics = Semantics::BagSet,
            "--json" => json = true,
            "--jobs" => {
                jobs = parse_count(&next_value(&mut it, "--jobs")?, "--jobs")?;
                jobs_set = true;
            }
            "--keep-going" => keep_going = true,
            "--metrics" => metrics = true,
            "--trace-out" => trace_out = Some(next_value(&mut it, "--trace-out")?),
            "--algorithm" => {
                algorithm_name = next_value(&mut it, "--algorithm")?;
                algorithm_set = true;
            }
            "--budget" => {
                let text = next_value(&mut it, "--budget")?;
                budget = text.parse().map_err(|_| {
                    CliError::Usage(format!("--budget needs a number, got '{text}'"))
                })?;
                budget_set = true;
            }
            "--engine" => {
                engine_name = next_value(&mut it, "--engine")?;
                engine_set = true;
            }
            "--lp-route" => {
                route_name = next_value(&mut it, "--lp-route")?;
                route_set = true;
            }
            "--repeat" => {
                repeat = parse_count(&next_value(&mut it, "--repeat")?, "--repeat")?;
                repeat_set = true;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")))
            }
            file => files.push(file.to_string()),
        }
    }
    // Flag combinations that would be silently ignored are rejected instead:
    // neither the set- nor the bag-set-semantics check touches the bag
    // machinery, and the budget only configures guess-check enumeration.
    if semantics != Semantics::Bag {
        for (set, flag) in [
            (algorithm_set, "--algorithm"),
            (engine_set, "--engine"),
            (route_set, "--lp-route"),
            (budget_set, "--budget"),
            (jobs_set, "--jobs"),
            // The observability layer instruments the bag pipeline; the set
            // and bag-set checks never touch it, so a metrics request there
            // would silently report zeros.
            (metrics, "--metrics"),
            (trace_out.is_some(), "--trace-out"),
        ] {
            if set {
                return Err(CliError::Usage(format!(
                    "{flag} only applies to bag semantics; drop --{}",
                    semantics.name()
                )));
            }
        }
    }
    if budget_set && algorithm_name != "guess-check" {
        return Err(CliError::Usage(
            "--budget only applies to --algorithm guess-check".to_string(),
        ));
    }
    let (algorithm, algorithm_name) = match algorithm_name.as_str() {
        "most-general" | "most-general-probe" | "mgp" => {
            (Algorithm::MostGeneralProbe, "most-general")
        }
        "all-probes" => (Algorithm::AllProbes, "all-probes"),
        "guess-check" => (Algorithm::GuessCheck { budget }, "guess-check"),
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm '{other}' (expected most-general, all-probes or guess-check)"
            )))
        }
    };
    let (mut engine, engine_name) = match engine_name.as_str() {
        "simplex" => (FeasibilityEngine::Simplex, "simplex"),
        "fourier-motzkin" | "fm" => (FeasibilityEngine::FourierMotzkin, "fourier-motzkin"),
        other => {
            return Err(CliError::Usage(format!(
                "unknown engine '{other}' (expected simplex or fourier-motzkin)"
            )))
        }
    };
    // The LP route refines the simplex engine (rational vs fraction-free
    // pivoting); it has no meaning for Fourier–Motzkin. Verdicts and JSON
    // output are byte-identical across routes, so the envelope keeps
    // reporting the engine family ("simplex"), not the route.
    if route_set && engine == FeasibilityEngine::FourierMotzkin {
        return Err(CliError::Usage(
            "--lp-route selects the simplex pivot arithmetic; drop --engine fourier-motzkin"
                .to_string(),
        ));
    }
    match route_name.as_str() {
        "simplex" | "rational" => {}
        "bareiss" | "fraction-free" => engine = FeasibilityEngine::Bareiss,
        "auto" => engine = FeasibilityEngine::Auto,
        other => {
            return Err(CliError::Usage(format!(
                "unknown LP route '{other}' (expected simplex, bareiss or auto)"
            )))
        }
    }
    if repeat == 0 {
        return Err(CliError::Usage("--repeat must be at least 1".to_string()));
    }
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".to_string()));
    }
    Ok(DecideOpts {
        semantics,
        algorithm,
        algorithm_name,
        engine,
        engine_name,
        json,
        repeat,
        repeat_set,
        jobs,
        jobs_set,
        keep_going,
        metrics,
        trace_out,
        files,
    })
}

// ---------------------------------------------------------------------------
// Metrics / tracing
// ---------------------------------------------------------------------------

/// Registry and phase readings taken at command start, so everything a
/// command reports is a delta of its own work — never a process-lifetime
/// total (in-process callers like the test harness run many commands in one
/// process).
struct MetricsBaseline {
    registry: dioph_obs::MetricsSnapshot,
    phases: [dioph_obs::PhaseStat; 6],
}

/// Arms the observability layer for one command and records the baseline:
/// spans are timed for `--metrics` and `--trace-out` runs, trace events are
/// collected for `--trace-out`, and the per-worker table restarts so the
/// command reports only its own workers.
fn start_observability(metrics: bool, trace_out: Option<&str>) -> MetricsBaseline {
    if metrics || trace_out.is_some() {
        dioph_obs::phase::set_timing(true);
        dioph_obs::pool::reset();
    }
    if trace_out.is_some() {
        dioph_obs::trace::enable();
        dioph_obs::trace::name_current_thread("main");
    }
    MetricsBaseline { registry: dioph_obs::snapshot(), phases: dioph_obs::phase::snapshot() }
}

/// Renders the `"metrics"` envelope member. The `"counters"` block holds
/// exactly the [`Deterministic`](dioph_obs::Stability::Deterministic)
/// registry cells — a pure function of the input and the algorithm,
/// byte-identical across `--jobs` and `--lp-route` (pinned by tests).
/// Everything route- or scheduling-dependent lands in `"volatile"`,
/// `"phases"` and `"workers"`, which `verify` checks structurally only.
fn metrics_json(baseline: &MetricsBaseline) -> String {
    let registry = dioph_obs::snapshot().since(&baseline.registry);
    let phases = dioph_obs::phase::since(&dioph_obs::phase::snapshot(), &baseline.phases);
    let mut deterministic: Vec<String> = Vec::new();
    let mut volatile: Vec<String> = Vec::new();
    for (cell, value) in registry.iter() {
        let block = match cell.stability() {
            dioph_obs::Stability::Deterministic => &mut deterministic,
            dioph_obs::Stability::Volatile => &mut volatile,
        };
        block.push(format!("\"{}\":{value}", cell.name()));
    }
    let phases: Vec<String> = phases
        .iter()
        .map(|stat| {
            format!(
                "{{\"phase\":\"{}\",\"calls\":{},\"wall_ns\":{}}}",
                stat.phase.name(),
                stat.calls,
                stat.wall_ns
            )
        })
        .collect();
    let workers: Vec<String> = dioph_obs::pool::snapshot()
        .iter()
        .map(|w| {
            format!(
                "{{\"pool\":\"{}\",\"worker\":{},\"claims\":{},\"busy_ns\":{},\
                 \"max_unit_ns\":{}}}",
                w.pool, w.worker, w.claims, w.busy_ns, w.max_unit_ns
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"volatile\":{{{}}},\"phases\":[{}],\"workers\":[{}]}}",
        deterministic.join(","),
        volatile.join(","),
        phases.join(","),
        workers.join(",")
    )
}

/// The human-readable metrics breakdown (`--metrics` without `--json`):
/// phases with at least one span, non-zero counters, and the per-worker
/// table.
fn metrics_human(baseline: &MetricsBaseline) -> String {
    let registry = dioph_obs::snapshot().since(&baseline.registry);
    let phases = dioph_obs::phase::since(&dioph_obs::phase::snapshot(), &baseline.phases);
    let mut out = String::from("metrics (this command):\n");
    for stat in phases {
        if stat.calls == 0 {
            continue;
        }
        writeln!(
            out,
            "  phase {:<8} {:>7} span(s)  {:>10}",
            stat.phase.name(),
            stat.calls,
            format_ns(u128::from(stat.wall_ns))
        )
        .expect("writing to a String cannot fail");
    }
    for (cell, value) in registry.iter() {
        if value == 0 {
            continue;
        }
        writeln!(out, "  {:<34} {value}", cell.name()).expect("writing to a String cannot fail");
    }
    for w in dioph_obs::pool::snapshot() {
        writeln!(
            out,
            "  worker {}/{}: {} claim(s), busy {}, max unit {}",
            w.pool,
            w.worker,
            w.claims,
            format_ns(u128::from(w.busy_ns)),
            format_ns(u128::from(w.max_unit_ns))
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Drains the trace collector and writes the Chrome trace-event file.
fn write_trace(path: &str) -> Result<(), CliError> {
    let trace = dioph_obs::trace::take();
    std::fs::write(path, trace.to_chrome_json())
        .map_err(|e| CliError::Failure(format!("{path}: {e}")))
}

// ---------------------------------------------------------------------------
// Input loading
// ---------------------------------------------------------------------------

/// One input file (or stdin) with its raw text — kept around so span-carrying
/// diagnostics can name the file and resolve line/column positions.
struct LoadedSource {
    name: String,
    text: String,
}

fn read_sources(files: &[String], stdin: &mut dyn Read) -> Result<Vec<LoadedSource>, CliError> {
    let mut sources: Vec<LoadedSource> = Vec::new();
    if files.is_empty() {
        let mut text = String::new();
        stdin.read_to_string(&mut text).map_err(|e| CliError::Failure(format!("<stdin>: {e}")))?;
        sources.push(LoadedSource { name: "<stdin>".to_string(), text });
    } else {
        for file in files {
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError::Failure(format!("{file}: {e}")))?;
            sources.push(LoadedSource { name: file.clone(), text });
        }
    }
    Ok(sources)
}

/// A parsed query tagged with the index of the [`LoadedSource`] it came from.
type SourcedQuery = (usize, SpannedQuery);

/// Parses every source, keeping the span side-table and a back-pointer from
/// each query to the source it came from (an index into the returned list).
fn load_spanned_queries(
    files: &[String],
    stdin: &mut dyn Read,
) -> Result<(Vec<LoadedSource>, Vec<SourcedQuery>), CliError> {
    let sources = read_sources(files, stdin)?;
    let _parse_span = dioph_obs::span(dioph_obs::Phase::Parse);
    let mut queries = Vec::new();
    for (index, source) in sources.iter().enumerate() {
        let parsed = parse_program_spanned(&source.text).map_err(|e| {
            CliError::Failure(format!(
                "{}:{}:{}: {}",
                source.name,
                e.line(),
                e.column(),
                e.message()
            ))
        })?;
        // Each source must pair up on its own: concatenating an odd-count
        // file would silently shift every later pair by one query.
        if !parsed.len().is_multiple_of(2) {
            return Err(CliError::Failure(format!(
                "{}: holds {} queries, but every input must hold an even number \
                 (consecutive (containee, containing) pairs); concatenate files with `cat` \
                 if a pair spans them",
                source.name,
                parsed.len()
            )));
        }
        dioph_obs::registry::PARSE_QUERIES.add(parsed.len() as u64);
        queries.extend(parsed.into_iter().map(|q| (index, q)));
    }
    Ok((sources, queries))
}

fn load_queries(files: &[String], stdin: &mut dyn Read) -> Result<Vec<ConjunctiveQuery>, CliError> {
    let (_, queries) = load_spanned_queries(files, stdin)?;
    Ok(queries.into_iter().map(|(_, q)| q.query).collect())
}

fn into_pairs(
    queries: Vec<ConjunctiveQuery>,
) -> Result<Vec<(ConjunctiveQuery, ConjunctiveQuery)>, CliError> {
    if queries.is_empty() {
        return Err(CliError::Failure(
            "no queries in the input; expected '.'-terminated datalog queries in consecutive \
             (containee, containing) pairs — see docs/grammar.md"
                .to_string(),
        ));
    }
    // Evenness is guaranteed per source by `load_queries`.
    let mut pairs = Vec::with_capacity(queries.len() / 2);
    let mut it = queries.into_iter();
    while let (Some(containee), Some(containing)) = (it.next(), it.next()) {
        pairs.push((containee, containing));
    }
    Ok(pairs)
}

// ---------------------------------------------------------------------------
// decide / equiv
// ---------------------------------------------------------------------------

/// The decision backend `decide`/`equiv` run on: the plain sequential
/// decider, or the probe-parallel engine when `--jobs` asks for more than
/// one thread. Verdicts are bit-identical either way; only wall-clock
/// differs.
enum DecideBackend {
    Sequential(BagContainmentDecider),
    Parallel(DecisionEngine),
}

impl DecideBackend {
    fn from_opts(opts: &DecideOpts) -> DecideBackend {
        if opts.jobs > 1 {
            DecideBackend::Parallel(DecisionEngine::new(opts.engine_config()))
        } else {
            DecideBackend::Sequential(
                BagContainmentDecider::new(opts.algorithm).with_engine(opts.engine),
            )
        }
    }

    fn decide(
        &self,
        containee: &ConjunctiveQuery,
        containing: &ConjunctiveQuery,
    ) -> Result<BagContainment, ContainmentError> {
        match self {
            DecideBackend::Sequential(decider) => decider.decide(containee, containing),
            DecideBackend::Parallel(engine) => engine.decide(containee, containing),
        }
    }
}

/// Decides one direction under the selected semantics; returns the verdict
/// and its rendering in the requested output mode only (no point formatting
/// JSON for a human run, or vice versa).
fn decide_direction(
    opts: &DecideOpts,
    backend: &DecideBackend,
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
) -> Result<(bool, String), CliError> {
    match opts.semantics {
        Semantics::Bag => {
            let result = backend.decide(containee, containing).map_err(|e| {
                CliError::Failure(format!(
                    "cannot decide {} {} {}: {e}",
                    containee.name(),
                    opts.semantics.symbol(),
                    containing.name()
                ))
            })?;
            let rendered = if opts.json { result.to_json() } else { result.to_string() };
            Ok((result.holds(), rendered))
        }
        Semantics::Set => Ok(render_set_result(&set_containment(containee, containing), opts.json)),
        Semantics::BagSet => {
            let result = bag_set_containment(containee, containing).map_err(|e| {
                CliError::Failure(format!(
                    "cannot decide {} {} {}: {e}",
                    containee.name(),
                    opts.semantics.symbol(),
                    containing.name()
                ))
            })?;
            Ok(render_set_result(&result, opts.json))
        }
    }
}

/// Renders a [`SetContainment`] verdict (shared by set and bag-set modes —
/// the latter coincides with set containment on its fragment, so both carry
/// the same witness-homomorphism certificates).
fn render_set_result(result: &SetContainment, json_mode: bool) -> (bool, String) {
    let rendered = match (result.witness(), json_mode) {
        (Some(witness), false) => format!("contained (witness homomorphism {witness})"),
        (Some(witness), true) => format!(
            "{{\"verdict\":\"contained\",\"witness\":{}}}",
            json::string(&witness.to_string())
        ),
        (None, false) => "not contained (no containment mapping exists)".to_string(),
        (None, true) => "{\"verdict\":\"not_contained\"}".to_string(),
    };
    (result.holds(), rendered)
}

/// Pre-flight fragment check for `decide`/`equiv` under bag semantics: a
/// containee outside the engine's fragment (unsafe, projection-bearing,
/// empty-bodied) is reported with the file, line and column of the offending
/// variable — the engine's own [`ContainmentError`] knows only query names.
fn precheck_containees(
    sources: &[LoadedSource],
    queries: &[SourcedQuery],
    mutual: bool,
    symbol: &str,
) -> Result<(), CliError> {
    let _check_span = dioph_obs::span(dioph_obs::Phase::Check);
    let config = LintConfig::new();
    for chunk in queries.chunks_exact(2) {
        // equiv decides both directions, so both queries act as containee;
        // forward is decided (and therefore reported) first.
        let mut roles = vec![(&chunk[0], &chunk[1])];
        if mutual {
            roles.push((&chunk[1], &chunk[0]));
        }
        for ((source_index, left), (_, right)) in roles {
            let source = &sources[*source_index];
            let Some(d) =
                containee_fragment_diagnostics(left, &source.text, &config).into_iter().next()
            else {
                continue;
            };
            return Err(CliError::Failure(format!(
                "{} (cannot decide {} {symbol} {})",
                d.render(&source.name),
                left.query.name(),
                right.query.name(),
            )));
        }
    }
    Ok(())
}

fn cmd_decide(args: &[String], stdin: &mut dyn Read, mutual: bool) -> CliResult {
    let opts = parse_decide_opts(args)?;
    if opts.repeat_set {
        return Err(CliError::Usage("--repeat only applies to bench".to_string()));
    }
    if opts.keep_going {
        return Err(CliError::Usage("--keep-going only applies to batch".to_string()));
    }
    let baseline = start_observability(opts.metrics, opts.trace_out.as_deref());
    let (sources, spanned) = load_spanned_queries(&opts.files, stdin)?;
    if opts.semantics != Semantics::Set {
        // Set semantics (Chandra–Merlin) accepts any safe-or-not shape the
        // grammar allows; both the bag and bag-set paths enforce the
        // projection-free containee fragment up front, with positions.
        precheck_containees(&sources, &spanned, mutual, opts.semantics.symbol())?;
    }
    let pairs = into_pairs(spanned.into_iter().map(|(_, q)| q.query).collect())?;
    let backend = DecideBackend::from_opts(&opts);
    let mut human = String::new();
    let mut json_pairs: Vec<String> = Vec::new();
    for (i, (containee, containing)) in pairs.iter().enumerate() {
        let index = i + 1;
        let forward = decide_direction(&opts, &backend, containee, containing)?;
        if mutual {
            let backward = decide_direction(&opts, &backend, containing, containee)?;
            let equivalent = forward.0 && backward.0;
            if opts.json {
                json_pairs.push(format!(
                    "{{\"index\":{index},\"containee\":{},\"containing\":{},\"equivalent\":{},\
                     \"forward\":{},\"backward\":{}}}",
                    json::string(&containee.to_string()),
                    json::string(&containing.to_string()),
                    equivalent,
                    forward.1,
                    backward.1,
                ));
            } else {
                let eq_symbol = match opts.semantics {
                    Semantics::Bag => "≡b",
                    Semantics::Set => "≡s",
                    Semantics::BagSet => "≡bs",
                };
                let verdict = if equivalent { "equivalent" } else { "NOT equivalent" };
                writeln!(
                    human,
                    "[{index}] {} {eq_symbol} {}: {verdict}\n    forward  ({} {} {}): {}\n    \
                     backward ({} {} {}): {}",
                    containee.name(),
                    containing.name(),
                    containee.name(),
                    opts.semantics.symbol(),
                    containing.name(),
                    forward.1,
                    containing.name(),
                    opts.semantics.symbol(),
                    containee.name(),
                    backward.1,
                )
                .expect("writing to a String cannot fail");
            }
        } else if opts.json {
            json_pairs.push(format!(
                "{{\"index\":{index},\"containee\":{},\"containing\":{},\"result\":{}}}",
                json::string(&containee.to_string()),
                json::string(&containing.to_string()),
                forward.1,
            ));
        } else {
            writeln!(
                human,
                "[{index}] {} {} {}: {}",
                containee.name(),
                opts.semantics.symbol(),
                containing.name(),
                forward.1
            )
            .expect("writing to a String cannot fail");
        }
    }
    if let Some(path) = &opts.trace_out {
        write_trace(path)?;
    }
    if opts.json {
        let command = if mutual { "equiv" } else { "decide" };
        let metrics = if opts.metrics {
            format!(",\"metrics\":{}", metrics_json(&baseline))
        } else {
            String::new()
        };
        Ok(format!(
            "{{\"command\":\"{command}\",\"semantics\":\"{}\",\"algorithm\":\"{}\",\
             \"engine\":\"{}\",\"pairs\":[{}]{metrics}}}\n",
            opts.semantics.name(),
            opts.algorithm_name,
            opts.engine_name,
            json_pairs.join(",")
        ))
    } else {
        if opts.metrics {
            human.push_str(&metrics_human(&baseline));
        }
        Ok(human)
    }
}

// ---------------------------------------------------------------------------
// batch
// ---------------------------------------------------------------------------

/// Concatenates several owned readers into one (std's `Read::chain` nests
/// types, which does not scale to a runtime file list).
struct MultiReader {
    sources: std::collections::VecDeque<Box<dyn Read + Send>>,
}

impl Read for MultiReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        while let Some(front) = self.sources.front_mut() {
            let n = front.read(buf)?;
            if n > 0 {
                return Ok(n);
            }
            self.sources.pop_front();
        }
        Ok(0)
    }
}

/// Renders one batch verdict as a single output line.
fn render_verdict(opts: &DecideOpts, verdict: &Verdict) -> String {
    match (&verdict.outcome, opts.json) {
        (Ok(outcome), true) => format!(
            "{{\"id\":{},\"containee\":{},\"containing\":{},\"result\":{}}}\n",
            verdict.id,
            json::string(&outcome.containee.to_string()),
            json::string(&outcome.containing.to_string()),
            outcome.verdict.to_json(),
        ),
        (Ok(outcome), false) => format!(
            "[{}] {} ⊑b {}: {}\n",
            verdict.id,
            outcome.containee.name(),
            outcome.containing.name(),
            outcome.verdict
        ),
        (Err(error), true) => format!(
            "{{\"id\":{},\"error\":{{\"stage\":\"{}\",\"message\":{}}}}}\n",
            verdict.id,
            error.stage(),
            json::string(error.message()),
        ),
        (Err(error), false) => {
            format!("[{}] {} error: {}\n", verdict.id, error.stage(), error.message())
        }
    }
}

fn cmd_batch(
    args: &[String],
    stdin: &mut (dyn Read + Send),
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let opts = parse_decide_opts(args)?;
    if opts.semantics != Semantics::Bag {
        return Err(CliError::Usage(format!(
            "batch decides bag containment; drop --{}",
            opts.semantics.name()
        )));
    }
    if opts.repeat_set {
        return Err(CliError::Usage("--repeat only applies to bench".to_string()));
    }
    let baseline = start_observability(opts.metrics, opts.trace_out.as_deref());

    // Input: stdin, or the FILEs concatenated — consumed lazily either way,
    // so verdicts stream out while input is still arriving.
    let source: Box<dyn Read + Send> = if opts.files.is_empty() {
        Box::new(stdin)
    } else {
        let mut sources: std::collections::VecDeque<Box<dyn Read + Send>> =
            std::collections::VecDeque::new();
        for file in &opts.files {
            let handle =
                std::fs::File::open(file).map_err(|e| CliError::Failure(format!("{file}: {e}")))?;
            sources.push_back(Box::new(handle));
        }
        Box::new(MultiReader { sources })
    };

    let engine = DecisionEngine::new(opts.engine_config());
    let mut stream_error: Option<CliError> = None;
    let stats = engine.run_batch(JobReader::new(BufReader::new(source)), |verdict| {
        if let (Err(error), false) = (&verdict.outcome, opts.keep_going) {
            // Without --keep-going the first failure aborts the stream; the
            // diagnostic goes to stderr like decide's, not into the output.
            // Printed immediately (not after run_batch returns) because the
            // abort only completes once the input yields its next line or
            // closes — an interactive user must see why the batch stopped
            // while that drain is still pending.
            let message = format!("pair {}: {}", verdict.id, error);
            eprintln!("diophantus: {message}");
            stream_error = Some(CliError::Reported);
            return false;
        }
        match write_out(out, &render_verdict(&opts, &verdict)) {
            Ok(()) => true,
            Err(e) => {
                stream_error = Some(e);
                false
            }
        }
    });
    if let Some(error) = stream_error {
        return Err(error);
    }
    if let Some(path) = &opts.trace_out {
        write_trace(path)?;
    }
    // The metrics trailer is emitted even when some pairs failed under
    // --keep-going — the run completed, and the failure count is itself one
    // of the deterministic counters.
    if opts.metrics {
        if opts.json {
            write_out(out, &format!("{{\"metrics\":{}}}\n", metrics_json(&baseline)))?;
        } else {
            write_out(out, &metrics_human(&baseline))?;
        }
    }
    if stats.failures > 0 {
        return Err(CliError::Failure(format!(
            "{} of {} pair(s) failed (error lines inline above)",
            stats.failures, stats.jobs_processed
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

struct CheckOpts {
    json: bool,
    config: LintConfig,
    files: Vec<String>,
}

fn parse_check_opts(args: &[String]) -> Result<CheckOpts, CliError> {
    let mut json = false;
    let mut config = LintConfig::new();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => {
                let value = next_value(&mut it, "--deny")?;
                if value == "warnings" {
                    config.deny_warnings();
                } else {
                    config.set(&value, Severity::Error).map_err(CliError::Usage)?;
                }
            }
            "--allow" => {
                let value = next_value(&mut it, "--allow")?;
                config.set(&value, Severity::Allow).map_err(CliError::Usage)?;
            }
            "-W" | "--warn" => {
                let value = next_value(&mut it, "-W")?;
                config.set(&value, Severity::Warning).map_err(CliError::Usage)?;
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(CliError::Usage(format!("unknown option '{flag}' for check")));
            }
            file => files.push(file.to_string()),
        }
    }
    Ok(CheckOpts { json, config, files })
}

/// Renders one diagnostic as a JSON object (stable key order, so `--json`
/// output is byte-reproducible and pinned by a golden fixture).
fn diagnostic_to_json(d: &dioph_analyze::Diagnostic) -> String {
    let span = match d.span {
        Some(span) => format!("{{\"start\":{},\"end\":{}}}", span.start, span.end),
        None => "null".to_string(),
    };
    format!(
        "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"query\":{},\"line\":{},\
         \"column\":{},\"span\":{span},\"message\":{}}}",
        d.code,
        d.name,
        d.severity,
        json::string(&d.query),
        d.line,
        d.column,
        json::string(&d.message),
    )
}

/// Renders one pair analysis as a JSON object.
fn pair_analysis_to_json(pair: &dioph_analyze::PairAnalysis) -> String {
    let cost = match &pair.cost {
        Some(cost) => {
            let probe = match cost.probe_space {
                Some(n) => n.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"probe_space\":{probe},\"lp_unknowns\":{},\"lp_rows_bound\":{}}}",
                cost.lp_unknowns, cost.lp_rows_bound
            )
        }
        None => "null".to_string(),
    };
    format!(
        "{{\"index\":{},\"containee\":{},\"containing\":{},\"fragment\":\"{}\",\"cost\":{cost}}}",
        pair.index,
        json::string(&pair.containee),
        json::string(&pair.containing),
        pair.fragment.label(),
    )
}

fn cmd_check(args: &[String], stdin: &mut dyn Read, out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_check_opts(args)?;
    let sources = read_sources(&opts.files, stdin)?;
    let mut human = String::new();
    let mut json_files: Vec<String> = Vec::new();
    let mut totals = (0usize, 0usize, 0usize);
    let mut exit = 0;
    for source in &sources {
        let analysis = analyze_source(&source.text, &opts.config);
        let (errors, warnings, notes) = analysis.counts();
        totals = (totals.0 + errors, totals.1 + warnings, totals.2 + notes);
        exit = exit.max(analysis.max_severity().map_or(0, Severity::exit_code));
        if opts.json {
            let diagnostics: Vec<String> =
                analysis.all_diagnostics().map(diagnostic_to_json).collect();
            let pairs: Vec<String> = analysis.pairs.iter().map(pair_analysis_to_json).collect();
            json_files.push(format!(
                "{{\"file\":{},\"diagnostics\":[{}],\"pairs\":[{}]}}",
                json::string(&source.name),
                diagnostics.join(","),
                pairs.join(","),
            ));
        } else {
            for d in analysis.all_diagnostics() {
                writeln!(human, "{}", d.render(&source.name))
                    .expect("writing to a String cannot fail");
            }
            for pair in &analysis.pairs {
                let cost = match &pair.cost {
                    Some(c) => match c.probe_space {
                        Some(p) => format!(
                            " (probe space {p}, lp ≤ {}×{})",
                            c.lp_unknowns, c.lp_rows_bound
                        ),
                        None => {
                            format!(" (lp ≤ {}×{})", c.lp_unknowns, c.lp_rows_bound)
                        }
                    },
                    None => String::new(),
                };
                writeln!(
                    human,
                    "{}: pair {} ({} ⊑b {}): {}{cost}",
                    source.name, pair.index, pair.containee, pair.containing, pair.fragment
                )
                .expect("writing to a String cannot fail");
            }
        }
    }
    if opts.json {
        write_out(
            out,
            &format!(
                "{{\"command\":\"check\",\"files\":[{}],\"summary\":{{\"errors\":{},\
                 \"warnings\":{},\"notes\":{},\"exit\":{exit}}}}}\n",
                json_files.join(","),
                totals.0,
                totals.1,
                totals.2,
            ),
        )?;
    } else {
        if totals != (0, 0, 0) {
            writeln!(
                human,
                "check: {} error(s), {} warning(s), {} note(s)",
                totals.0, totals.1, totals.2
            )
            .expect("writing to a String cannot fail");
        }
        write_out(out, &human)?;
    }
    if exit == 0 {
        Ok(())
    } else {
        Err(CliError::Lints(exit))
    }
}

// ---------------------------------------------------------------------------
// verify
// ---------------------------------------------------------------------------

/// Running tallies of one `verify` invocation.
#[derive(Default)]
struct VerifyReport {
    lines: String,
    verified: usize,
    contained: usize,
    /// `bench --json` pair entries: latency numbers plus a bare verdict,
    /// no certificate — acknowledged so a bench document round-trips
    /// through verify instead of erroring out.
    timing_entries: usize,
    error_lines: usize,
    /// `"metrics"` envelope members (and batch `--metrics` trailer lines)
    /// acknowledged and structurally validated.
    metrics_blocks: usize,
    failed: usize,
}

impl VerifyReport {
    fn record(&mut self, label: &str, check: Result<String, String>) {
        match check {
            Ok(line) => {
                self.verified += 1;
                self.lines.push_str(&format!("[{label}] {line}\n"));
            }
            Err(line) => {
                self.failed += 1;
                self.lines.push_str(&format!("[{label}] VERIFICATION FAILED: {line}\n"));
            }
        }
    }
}

/// Structurally validates one `"metrics"` envelope member (decide, equiv,
/// bench and fuzz envelopes, and the trailing batch `--metrics` line). The
/// deterministic `"counters"` block must hold exactly the registry's
/// deterministic cells as non-negative integers and satisfy the verdict
/// invariant (contained + not-contained ≤ pairs decided); the volatile
/// counters, phases and workers are timing- and scheduling-dependent by
/// contract, so only their names and shapes are checked, never their values.
fn check_metrics(metrics: &Json) -> Result<String, String> {
    let uint = |value: &Json, what: &str| -> Result<u64, String> {
        match value {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            _ => Err(format!("{what} must be a non-negative integer")),
        }
    };
    let Some(Json::Object(counters)) = metrics.get("counters") else {
        return Err("\"metrics\" is missing its \"counters\" object".to_string());
    };
    let expected: Vec<&str> = dioph_obs::counters()
        .iter()
        .filter(|c| c.stability() == dioph_obs::Stability::Deterministic)
        .map(|c| c.name())
        .collect();
    let names: Vec<&str> = counters.keys().map(String::as_str).collect();
    if names != expected {
        return Err(format!(
            "deterministic counter block holds [{}]; the registry defines [{}]",
            names.join(", "),
            expected.join(", ")
        ));
    }
    for (name, value) in counters {
        uint(value, &format!("counter \"{name}\""))?;
    }
    let named = |name: &str| uint(&counters[name], name).expect("checked above");
    let pairs = named("engine.pairs_decided");
    let contained = named("engine.verdicts.contained");
    let not_contained = named("engine.verdicts.not_contained");
    if contained.saturating_add(not_contained) > pairs {
        return Err(format!(
            "verdict counters are inconsistent: {contained} contained + {not_contained} \
             not-contained > {pairs} pairs decided"
        ));
    }
    if let Some(volatile) = metrics.get("volatile") {
        let Json::Object(map) = volatile else {
            return Err("\"volatile\" must be an object".to_string());
        };
        for (name, value) in map {
            if dioph_obs::registry::counter(name).is_none() {
                return Err(format!("\"volatile\" names unknown counter \"{name}\""));
            }
            uint(value, &format!("volatile counter \"{name}\""))?;
        }
    }
    let phases = member(metrics, "phases")?.as_array().ok_or("\"phases\" must be an array")?;
    let known: Vec<&str> = dioph_obs::Phase::ALL.iter().map(|p| p.name()).collect();
    for entry in phases {
        let name = member_str(entry, "phase")?;
        if !known.contains(&name) {
            return Err(format!("unknown phase \"{name}\" (expected one of {})", known.join(", ")));
        }
        uint(member(entry, "calls")?, "phase calls")?;
        uint(member(entry, "wall_ns")?, "phase wall_ns")?;
    }
    let workers = member(metrics, "workers")?.as_array().ok_or("\"workers\" must be an array")?;
    for entry in workers {
        member_str(entry, "pool")?;
        uint(member(entry, "worker")?, "worker index")?;
        uint(member(entry, "claims")?, "worker claims")?;
    }
    Ok(format!(
        "metrics block verified ({pairs} pair decision(s): {contained} contained, \
         {not_contained} not contained; volatile counters and timings skipped by contract)"
    ))
}

/// Records one `"metrics"` member against the report.
fn acknowledge_metrics(report: &mut VerifyReport, metrics: &Json) {
    report.metrics_blocks += 1;
    match check_metrics(metrics) {
        Ok(line) => report.lines.push_str(&format!("[metrics] {line}\n")),
        Err(diagnostic) => {
            report.failed += 1;
            report.lines.push_str(&format!("[metrics] VERIFICATION FAILED: {diagnostic}\n"));
        }
    }
}

/// Reconstructs a [`Term`] from its datalog rendering by parsing a
/// synthetic single-term head.
fn term_from_text(text: &str) -> Result<Term, String> {
    let q = parse_query(&format!("w({text}) <- true."))
        .map_err(|e| format!("probe term '{text}' does not parse: {e}"))?;
    Ok(q.head()[0].clone())
}

/// Reconstructs an [`Atom`] from its datalog rendering by parsing a
/// synthetic Boolean body.
fn atom_from_text(text: &str) -> Result<Atom, String> {
    let q = parse_query(&format!("w() <- {text}."))
        .map_err(|e| format!("bag atom '{text}' does not parse: {e}"))?;
    let atom = q.body_atoms().next().cloned();
    atom.ok_or_else(|| format!("bag atom '{text}' is empty"))
}

/// JSON member access with a verify-flavoured diagnostic.
fn member<'a>(value: &'a Json, key: &str) -> Result<&'a Json, String> {
    value.get(key).ok_or_else(|| format!("certificate object is missing \"{key}\""))
}

fn member_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, String> {
    member(value, key)?.as_str().ok_or_else(|| format!("\"{key}\" must be a string"))
}

/// Re-checks one recorded direction (`containee ⊑b containing` plus its
/// `result` object) against the independent Equation-2 evaluator. Returns
/// the human line on success (`Ok`) or the mismatch diagnostic (`Err`);
/// contained verdicts carry no certificate and verify vacuously.
fn check_direction(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    result: &Json,
) -> Result<(bool, String), String> {
    match member_str(result, "verdict")? {
        "contained" => Ok((
            false,
            format!(
                "{} ⊑b {}: contained (no counterexample to re-check)",
                containee.name(),
                containing.name()
            ),
        )),
        "not_contained" => {
            let ce = member(result, "counterexample")?;
            let (lhs, rhs) = check_counterexample(containee, containing, ce)?;
            Ok((
                true,
                format!(
                    "{} ⋢b {}: counterexample verified ({lhs} > {rhs})",
                    containee.name(),
                    containing.name()
                ),
            ))
        }
        other => Err(format!("unknown verdict '{other}'")),
    }
}

/// Re-checks one recorded counterexample object against the independent
/// Equation-2 evaluator; on success returns the verified (containee,
/// containing) multiplicities. Shared by the decide/equiv/batch certificate
/// path and the fuzz disagreement-witness path.
fn check_counterexample(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    ce: &Json,
) -> Result<(Natural, Natural), String> {
    let probe_json = member(ce, "probe")?.as_array().ok_or("\"probe\" must be an array")?;
    let probe: Vec<Term> = probe_json
        .iter()
        .map(|t| term_from_text(t.as_str().ok_or("probe terms must be strings")?))
        .collect::<Result<_, String>>()?;
    let bag_json = member(ce, "bag")?.as_array().ok_or("\"bag\" must be an array")?;
    let mut entries: Vec<(Atom, Natural)> = Vec::with_capacity(bag_json.len());
    for entry in bag_json {
        let atom = atom_from_text(member_str(entry, "atom")?)?;
        let mult = Natural::from_decimal_str(member_str(entry, "multiplicity")?)
            .map_err(|e| format!("bad multiplicity: {e}"))?;
        entries.push((atom, mult));
    }
    let bag = BagInstance::from_multiplicities(entries);
    let recorded_lhs = Natural::from_decimal_str(member_str(ce, "containee_multiplicity")?)
        .map_err(|e| format!("bad containee_multiplicity: {e}"))?;
    let recorded_rhs = Natural::from_decimal_str(member_str(ce, "containing_multiplicity")?)
        .map_err(|e| format!("bad containing_multiplicity: {e}"))?;

    // The independent check: Equation 2, sharing no code with the
    // MPI route that produced the certificate.
    let lhs = bag_answer_multiplicity(containee, &bag, &probe);
    let rhs = bag_answer_multiplicity(containing, &bag, &probe);
    if lhs != recorded_lhs {
        return Err(format!(
            "recorded containee multiplicity {recorded_lhs}, evaluator says {lhs}"
        ));
    }
    if rhs != recorded_rhs {
        return Err(format!(
            "recorded containing multiplicity {recorded_rhs}, evaluator says {rhs}"
        ));
    }
    if lhs <= rhs {
        return Err(format!("the recorded bag does not violate containment ({lhs} ≤ {rhs})"));
    }
    Ok((lhs, rhs))
}

/// Re-checks one fuzz disagreement entry: the shrunk reproducer's
/// counterexample (when the disagreement carries one) must still violate
/// containment under the independent evaluator. Structural problems (missing
/// keys, unparseable queries) are hard errors, like everywhere in `verify`.
fn check_disagreement(report: &mut VerifyReport, label: &str, entry: &Json) -> Result<(), String> {
    let kind = member_str(entry, "kind")?;
    let minimized = member(entry, "minimized")?;
    let containee = parse_query(member_str(minimized, "containee")?)
        .map_err(|e| format!("minimized containee does not parse: {e}"))?;
    let containing = parse_query(member_str(minimized, "containing")?)
        .map_err(|e| format!("minimized containing query does not parse: {e}"))?;
    match minimized.get("counterexample") {
        Some(ce) => {
            let outcome = check_counterexample(&containee, &containing, ce).map(|(lhs, rhs)| {
                format!(
                    "recorded {kind} disagreement: minimized witness verified \
                     ({} ⋢b {} on the recorded bag, {lhs} > {rhs})",
                    containee.name(),
                    containing.name()
                )
            });
            report.record(label, outcome);
        }
        None => {
            // Set-side disagreements (a bag-set/set mismatch, a Contained
            // verdict without a set witness) have no bag to replay; they are
            // surfaced but nothing is independently re-checkable.
            report.error_lines += 1;
            report.lines.push_str(&format!(
                "[{label}] recorded {kind} disagreement: no counterexample to re-check\n"
            ));
        }
    }
    Ok(())
}

/// Parses the two query texts of a certificate entry and re-checks one or
/// both recorded directions.
fn check_entry(
    report: &mut VerifyReport,
    label: &str,
    entry: &Json,
    timing_only: bool,
) -> Result<(), String> {
    let containee = parse_query(member_str(entry, "containee")?)
        .map_err(|e| format!("recorded containee does not parse: {e}"))?;
    let containing = parse_query(member_str(entry, "containing")?)
        .map_err(|e| format!("recorded containing query does not parse: {e}"))?;
    let directions: Vec<(String, &ConjunctiveQuery, &ConjunctiveQuery, &Json)> =
        if let Some(result) = entry.get("result") {
            vec![(label.to_string(), &containee, &containing, result)]
        } else if let (Some(forward), Some(backward)) =
            (entry.get("forward"), entry.get("backward"))
        {
            vec![
                (format!("{label} forward"), &containee, &containing, forward),
                (format!("{label} backward"), &containing, &containee, backward),
            ]
        } else if let (true, Some(verdict)) =
            (timing_only, entry.get("verdict").and_then(Json::as_str))
        {
            // A bench --json pair: timing plus a bare verdict, no
            // certificate to re-check. Only reachable inside a
            // `"command":"bench"` envelope — a decide/equiv/batch entry
            // whose certificate went missing must still FAIL verification,
            // not be waved through as a timing entry.
            report.timing_entries += 1;
            report.lines.push_str(&format!(
                "[{label}] bench timing entry (verdict \"{verdict}\", no certificate to \
                 re-check)\n"
            ));
            return Ok(());
        } else {
            return Err(
                "entry has neither \"result\" nor \"forward\"/\"backward\" — only decide, \
                 equiv, batch and bench --json output is verifiable"
                    .to_string(),
            );
        };
    for (label, containee, containing, result) in directions {
        match check_direction(containee, containing, result) {
            Ok((was_counterexample, line)) => {
                if was_counterexample {
                    report.record(&label, Ok(line));
                } else {
                    report.contained += 1;
                    report.lines.push_str(&format!("[{label}] {line}\n"));
                }
            }
            Err(diagnostic) => report.record(&label, Err(diagnostic)),
        }
    }
    Ok(())
}

fn cmd_verify(
    args: &[String],
    stdin: &mut (dyn Read + Send),
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut files = Vec::new();
    for arg in args {
        if arg.starts_with("--") {
            return Err(CliError::Usage(format!(
                "unknown option '{arg}' (verify takes only certificate FILEs)"
            )));
        }
        files.push(arg.clone());
    }
    let mut sources: Vec<(String, String)> = Vec::new();
    if files.is_empty() {
        let mut text = String::new();
        stdin.read_to_string(&mut text).map_err(|e| CliError::Failure(format!("<stdin>: {e}")))?;
        sources.push(("<stdin>".to_string(), text));
    } else {
        for file in &files {
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError::Failure(format!("{file}: {e}")))?;
            sources.push((file.clone(), text));
        }
    }

    let mut report = VerifyReport::default();
    let mut saw_entries = false;
    for (name, text) in &sources {
        for (line_index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let location = format!("{name}:{}", line_index + 1);
            let doc = Json::parse(line)
                .map_err(|e| CliError::Failure(format!("{location}: not JSON: {e}")))?;
            if let Some(pairs) = doc.get("pairs").and_then(Json::as_array) {
                // A decide/equiv/bench/fuzz envelope. Only a bench envelope
                // may carry certificate-less timing entries, and only a fuzz
                // envelope may record per-pair decision errors; everything
                // else must present a re-checkable result.
                let command = doc.get("command").and_then(Json::as_str);
                let is_bench = command == Some("bench");
                let is_fuzz = command == Some("fuzz");
                for (i, entry) in pairs.iter().enumerate() {
                    saw_entries = true;
                    let label = format!("{}", i + 1);
                    if is_fuzz {
                        if let Some(error) = entry.get("error") {
                            let code =
                                error.get("code").and_then(Json::as_str).unwrap_or("no code");
                            report.error_lines += 1;
                            report.lines.push_str(&format!(
                                "[{label}] recorded decide error ({code}): nothing to re-check\n"
                            ));
                            continue;
                        }
                    }
                    check_entry(&mut report, &label, entry, is_bench)
                        .map_err(|e| CliError::Failure(format!("{location}: pair {label}: {e}")))?;
                }
                if is_fuzz {
                    let disagreements =
                        doc.get("disagreements").and_then(Json::as_array).ok_or_else(|| {
                            CliError::Failure(format!(
                                "{location}: fuzz envelope is missing \"disagreements\""
                            ))
                        })?;
                    for (i, entry) in disagreements.iter().enumerate() {
                        saw_entries = true;
                        let label = format!("disagreement {}", i + 1);
                        check_disagreement(&mut report, &label, entry)
                            .map_err(|e| CliError::Failure(format!("{location}: {label}: {e}")))?;
                    }
                }
                if let Some(metrics) = doc.get("metrics") {
                    acknowledge_metrics(&mut report, metrics);
                }
            } else if doc.get("id").is_some() {
                // A batch --json line.
                saw_entries = true;
                let label = match doc.get("id") {
                    Some(Json::Number(n)) => format!("{n}"),
                    _ => "?".to_string(),
                };
                if let Some(error) = doc.get("error") {
                    report.error_lines += 1;
                    let stage = error.get("stage").and_then(Json::as_str).unwrap_or("unknown");
                    report.lines.push_str(&format!(
                        "[{label}] recorded {stage} error: nothing to re-check\n"
                    ));
                } else {
                    check_entry(&mut report, &label, &doc, false)
                        .map_err(|e| CliError::Failure(format!("{location}: {e}")))?;
                }
            } else if let Some(metrics) = doc.get("metrics") {
                // The trailing `batch --json --metrics` line: a bare
                // `{"metrics":{...}}` object after the per-job lines.
                saw_entries = true;
                acknowledge_metrics(&mut report, metrics);
            } else {
                return Err(CliError::Failure(format!(
                    "{location}: unrecognised JSON (expected a decide/equiv envelope with \
                     \"pairs\" or batch --json lines)"
                )));
            }
        }
    }
    if !saw_entries {
        return Err(CliError::Failure(
            "no certificates in the input; pass a file produced with --json".to_string(),
        ));
    }
    // Metrics blocks are opt-in (`--metrics`); the summary only grows a
    // clause when one was actually present, so metrics-free documents keep
    // their historical byte-identical summary line.
    let metrics_clause = if report.metrics_blocks > 0 {
        format!(", {} metrics block(s)", report.metrics_blocks)
    } else {
        String::new()
    };
    let summary = format!(
        "verify: {} counterexample(s) verified, {} contained verdict(s), {} timing-only \
         entr{}, {} recorded error line(s){metrics_clause}, {} failure(s)\n",
        report.verified,
        report.contained,
        report.timing_entries,
        if report.timing_entries == 1 { "y" } else { "ies" },
        report.error_lines,
        report.failed
    );
    write_out(out, &report.lines)?;
    write_out(out, &summary)?;
    if report.failed > 0 {
        return Err(CliError::Failure(format!(
            "{} counterexample(s) failed verification",
            report.failed
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// fuzz
// ---------------------------------------------------------------------------

struct FuzzOpts {
    config: FuzzConfig,
    json: bool,
    replay: Option<String>,
    metrics: bool,
    trace_out: Option<String>,
}

fn parse_fuzz_opts(args: &[String]) -> Result<FuzzOpts, CliError> {
    let mut config = FuzzConfig::default();
    let mut json = false;
    let mut replay: Option<String> = None;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut cases_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--seed" => {
                let text = next_value(&mut it, "--seed")?;
                config.seed = text
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--seed needs a number, got '{text}'")))?;
            }
            "--cases" => {
                config.cases = parse_count(&next_value(&mut it, "--cases")?, "--cases")?;
                cases_set = true;
            }
            "--max-adom" => {
                config.max_adom = parse_count(&next_value(&mut it, "--max-adom")?, "--max-adom")?;
            }
            "--max-mult" => {
                let text = next_value(&mut it, "--max-mult")?;
                config.max_mult = text.parse().map_err(|_| {
                    CliError::Usage(format!("--max-mult needs a number, got '{text}'"))
                })?;
            }
            "--samples" => {
                config.samples = parse_count(&next_value(&mut it, "--samples")?, "--samples")?;
            }
            "--jobs" => config.jobs = parse_count(&next_value(&mut it, "--jobs")?, "--jobs")?,
            "--lp-route" => {
                let route = next_value(&mut it, "--lp-route")?;
                config.engine = match route.as_str() {
                    "simplex" | "rational" => FeasibilityEngine::Simplex,
                    "bareiss" | "fraction-free" => FeasibilityEngine::Bareiss,
                    "auto" => FeasibilityEngine::Auto,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown LP route '{other}' (expected simplex, bareiss or auto)"
                        )))
                    }
                };
            }
            "--replay" => replay = Some(next_value(&mut it, "--replay")?),
            "--metrics" => metrics = true,
            "--trace-out" => trace_out = Some(next_value(&mut it, "--trace-out")?),
            "--inject" => {
                let bug = next_value(&mut it, "--inject")?;
                config.injection = Some(match bug.as_str() {
                    "flip-verdict" => Injection::FlipVerdict,
                    "tamper-certificate" => Injection::TamperCertificate,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown injection '{other}' (expected flip-verdict or \
                             tamper-certificate)"
                        )))
                    }
                });
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")))
            }
            positional => {
                return Err(CliError::Usage(format!(
                    "unexpected argument '{positional}' (fuzz generates its own cases; \
                     use --replay DIR for a corpus)"
                )))
            }
        }
    }
    if cases_set && replay.is_some() {
        return Err(CliError::Usage(
            "--cases only applies to generated runs; drop --replay".to_string(),
        ));
    }
    if config.jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".to_string()));
    }
    if config.max_adom == 0 {
        return Err(CliError::Usage("--max-adom must be at least 1".to_string()));
    }
    if config.max_mult == 0 {
        return Err(CliError::Usage("--max-mult must be at least 1".to_string()));
    }
    Ok(FuzzOpts { config, json, replay, metrics, trace_out })
}

/// Loads the `*.dl` corpus files of `dir` (sorted by file name, consecutive
/// (containee, containing) pairs per file) as labelled replay cases.
fn load_corpus(dir: &str) -> Result<Vec<(String, ConjunctiveQuery, ConjunctiveQuery)>, CliError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CliError::Failure(format!("{dir}: {e}")))?;
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError::Failure(format!("{dir}: {e}")))?;
        let path = entry.path();
        if path.extension().and_then(std::ffi::OsStr::to_str) == Some("dl") {
            paths.push(path);
        }
    }
    // Directory iteration order is filesystem-dependent; the corpus replay
    // must not be, so the case order is pinned to the sorted file names.
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Failure(format!("{dir}: no *.dl corpus files to replay")));
    }
    let mut pairs = Vec::new();
    for path in &paths {
        let name = path
            .file_name()
            .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
        let queries = dioph_cq::parse_program(&text).map_err(|e| {
            CliError::Failure(format!("{name}:{}:{}: {}", e.line(), e.column(), e.message()))
        })?;
        if queries.is_empty() || !queries.len().is_multiple_of(2) {
            return Err(CliError::Failure(format!(
                "{name}: holds {} queries, but every corpus file must hold a positive even \
                 number (consecutive (containee, containing) pairs)",
                queries.len()
            )));
        }
        let mut it = queries.into_iter();
        let mut index = 0usize;
        while let (Some(containee), Some(containing)) = (it.next(), it.next()) {
            index += 1;
            pairs.push((format!("{name}:pair{index}"), containee, containing));
        }
    }
    Ok(pairs)
}

fn cmd_fuzz(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_fuzz_opts(args)?;
    let baseline = start_observability(opts.metrics, opts.trace_out.as_deref());
    let report = match &opts.replay {
        Some(dir) => run_replay(&opts.config, load_corpus(dir)?),
        None => run_fuzz(&opts.config),
    };
    if let Some(path) = &opts.trace_out {
        write_trace(path)?;
    }
    if opts.json {
        let mut rendered = report.to_json();
        if opts.metrics {
            // The report renders its own envelope; splice the metrics member
            // in before the closing brace (the envelope ends "…}\n").
            let body = rendered
                .trim_end_matches('\n')
                .strip_suffix('}')
                .expect("the fuzz envelope is a JSON object")
                .to_string();
            rendered = format!("{body},\"metrics\":{}}}\n", metrics_json(&baseline));
        }
        write_out(out, &rendered)?;
    } else {
        write_out(out, &report.disagreement_lines())?;
        write_out(out, &format!("{}\n", report.summary_line()))?;
        if opts.metrics {
            write_out(out, &metrics_human(&baseline))?;
        }
    }
    if report.disagreements.is_empty() {
        Ok(())
    } else {
        Err(CliError::Failure(format!(
            "{} disagreement(s) found (minimized reproducers above)",
            report.disagreements.len()
        )))
    }
}

// ---------------------------------------------------------------------------
// gen
// ---------------------------------------------------------------------------

fn cmd_gen(args: &[String]) -> CliResult {
    let mut kind_name: Option<String> = None;
    let mut count = DEFAULT_COUNT;
    let mut size: Option<usize> = None;
    let mut seed = DEFAULT_SEED;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--count" => count = parse_count(&next_value(&mut it, "--count")?, "--count")?,
            "--size" => size = Some(parse_count(&next_value(&mut it, "--size")?, "--size")?),
            "--seed" => {
                let text = next_value(&mut it, "--seed")?;
                seed = text
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--seed needs a number, got '{text}'")))?;
            }
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")))
            }
            positional => {
                if kind_name.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected extra argument '{positional}'"
                    )));
                }
                kind_name = Some(positional.to_string());
            }
        }
    }
    let kind_name = kind_name.unwrap_or_else(|| "spec".to_string());
    // Resolve the kind-specific size parameter up front so the provenance
    // header records the *effective* value, not whatever was (or wasn't)
    // passed — re-running the recorded command must regenerate the workload
    // even if a default changes.
    let (kind, size) = match kind_name.as_str() {
        "spec" | "specialization" => {
            let atoms = size.unwrap_or(4);
            (WorkloadKind::Specialization { atoms }, atoms)
        }
        "inflated" => {
            let atoms = size.unwrap_or(4);
            (WorkloadKind::Inflated { atoms }, atoms)
        }
        "contained" => {
            let atoms = size.unwrap_or(4);
            (WorkloadKind::Contained { atoms }, atoms)
        }
        "path" => {
            let length = size.unwrap_or(3);
            if length == 0 {
                return Err(CliError::Usage("--size must be at least 1 for path".to_string()));
            }
            (WorkloadKind::Path { length }, length)
        }
        "expmap" => {
            let mappings_log2 = size.unwrap_or(2);
            (WorkloadKind::ExponentialMapping { mappings_log2 }, mappings_log2)
        }
        "threecol" => {
            let vertices = size.unwrap_or(5);
            if vertices == 0 {
                return Err(CliError::Usage("--size must be at least 1 for threecol".to_string()));
            }
            (WorkloadKind::ThreeColorability { vertices }, vertices)
        }
        "chain" => {
            let length = size.unwrap_or(3);
            if length == 0 {
                return Err(CliError::Usage("--size must be at least 1 for chain".to_string()));
            }
            (WorkloadKind::Chain { length }, length)
        }
        "star" => {
            let rays = size.unwrap_or(3);
            if rays == 0 {
                return Err(CliError::Usage("--size must be at least 1 for star".to_string()));
            }
            (WorkloadKind::Star { rays }, rays)
        }
        "clique" => {
            let vertices = size.unwrap_or(3);
            if vertices < 2 {
                return Err(CliError::Usage("--size must be at least 2 for clique".to_string()));
            }
            (WorkloadKind::Clique { vertices }, vertices)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown workload kind '{other}' (expected spec, inflated, contained, path, \
                 expmap, threecol, chain, star or clique)"
            )))
        }
    };
    let pairs = generate_pairs(kind, count, seed);
    if json {
        let rendered: Vec<String> = pairs
            .iter()
            .map(|p| {
                format!(
                    "{{\"label\":{},\"containee\":{},\"containing\":{}}}",
                    json::string(&p.label),
                    json::string(&p.containee.to_string()),
                    json::string(&p.containing.to_string())
                )
            })
            .collect();
        Ok(format!(
            "{{\"command\":\"gen\",\"kind\":\"{kind_name}\",\"count\":{count},\"size\":{size},\
             \"seed\":{seed},\"pairs\":[{}]}}\n",
            rendered.join(",")
        ))
    } else {
        let mut out =
            format!("% diophantus gen {kind_name} --count {count} --size {size} --seed {seed}\n");
        for (i, WorkloadPair { label, containee, containing }) in pairs.iter().enumerate() {
            writeln!(out, "% pair {}: {label}\n{containee}.\n{containing}.", i + 1)
                .expect("writing to a String cannot fail");
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// bench
// ---------------------------------------------------------------------------

/// Renders a duration in nanoseconds with a human-friendly unit.
fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Allocation-discipline tallies accumulated over `bench`'s timed repeat
/// loops (one registry delta per loop, mirroring the arith fast-path
/// snapshots), rendered as the `"alloc"` block of `bench --json`.
#[derive(Default)]
struct AllocTally {
    /// Heap allocations observed by the counting allocator (zero outside
    /// the installed binary — in-process tests have no counting allocator).
    heap_allocs: u64,
    /// Probe tuples decided in the timed region (the denominator).
    probes: u64,
    monomial_inline: u64,
    monomial_spills: u64,
    scratch_reuses: u64,
    scratch_spills: u64,
    /// High-water mark (gauge): the deepest pooled-row stash any scratch
    /// reached, maxed across repeat loops.
    pool_rows_hwm: u64,
}

impl AllocTally {
    fn absorb(&mut self, delta: &dioph_obs::MetricsSnapshot) {
        let get = |name: &str| delta.get(name).unwrap_or(0);
        self.heap_allocs = self.heap_allocs.saturating_add(get("alloc.heap.allocs"));
        self.probes = self.probes.saturating_add(get("containment.probes.decided"));
        self.monomial_inline = self.monomial_inline.saturating_add(get("alloc.monomial.inline"));
        self.monomial_spills = self.monomial_spills.saturating_add(get("alloc.monomial.spills"));
        self.scratch_reuses = self.scratch_reuses.saturating_add(get("alloc.scratch.reuses"));
        self.scratch_spills = self.scratch_spills.saturating_add(get("alloc.scratch.spills"));
        self.pool_rows_hwm = self.pool_rows_hwm.max(get("alloc.pool.rows.hwm"));
    }

    /// Mean heap allocations per decided probe, or `None` with no probes.
    fn heap_allocs_per_probe(&self) -> Option<f64> {
        (self.probes > 0).then(|| self.heap_allocs as f64 / self.probes as f64)
    }
}

fn cmd_bench(args: &[String], stdin: &mut dyn Read) -> CliResult {
    let opts = parse_decide_opts(args)?;
    if opts.semantics != Semantics::Bag {
        return Err(CliError::Usage(format!(
            "bench times the bag-containment decider; drop --{}",
            opts.semantics.name()
        )));
    }
    if opts.jobs_set {
        return Err(CliError::Usage(
            "--jobs applies to decide, equiv and batch (bench times the sequential decider; \
             use the engine_scaling bench for thread sweeps)"
                .to_string(),
        ));
    }
    if opts.keep_going {
        return Err(CliError::Usage("--keep-going only applies to batch".to_string()));
    }
    let baseline = start_observability(opts.metrics, opts.trace_out.as_deref());
    let pairs = into_pairs(load_queries(&opts.files, stdin)?)?;
    let decider = BagContainmentDecider::new(opts.algorithm).with_engine(opts.engine);
    let mut human = String::new();
    let mut json_pairs: Vec<String> = Vec::new();
    let mut total_ns: u128 = 0;
    // Counter deltas over the timed runs report how often the hybrid numeric
    // tower stayed on its allocation-free machine-word path. Accumulated as
    // one registry delta per repeat loop — not one process-lifetime reading
    // at the end — so the numbers cover exactly the runs the latencies
    // cover: compilation arithmetic and earlier in-process benches are
    // excluded instead of silently folded in.
    let mut arith = dioph_arith::stats::Snapshot::default();
    // Same discipline for the allocation counters: per-loop registry deltas,
    // so the per-probe figure covers exactly the timed decisions.
    let mut alloc = AllocTally::default();
    for (i, (containee, containing)) in pairs.iter().enumerate() {
        let index = i + 1;
        let cannot_decide = |e: &dyn std::fmt::Display| {
            CliError::Failure(format!(
                "cannot decide {} ⊑b {}: {e}",
                containee.name(),
                containing.name()
            ))
        };
        // Compile the pair once and share it across the repeat loop, so the
        // timings measure the decision procedure — not recompilation of the
        // containment-mapping enumeration on every run. (The first run still
        // pays lazy compilation of the probes it touches.)
        let pair = CompiledPair::new(containee.clone(), containing.clone())
            .map_err(|e| cannot_decide(&e))?;
        let mut durations_ns: Vec<u128> = Vec::with_capacity(opts.repeat);
        let mut verdict: Option<BagContainment> = None;
        let run_before = dioph_arith::stats::snapshot();
        let reg_before = dioph_obs::snapshot();
        for _ in 0..opts.repeat {
            let start = Instant::now();
            let result = decider.decide_pair(&pair).map_err(|e| cannot_decide(&e))?;
            durations_ns.push(start.elapsed().as_nanos());
            verdict.get_or_insert(result);
        }
        let run_delta = dioph_arith::stats::snapshot().since(&run_before);
        alloc.absorb(&dioph_obs::snapshot().since(&reg_before));
        arith = dioph_arith::stats::Snapshot {
            small_hits: arith.small_hits.saturating_add(run_delta.small_hits),
            big_fallbacks: arith.big_fallbacks.saturating_add(run_delta.big_fallbacks),
            int_small_hits: arith.int_small_hits.saturating_add(run_delta.int_small_hits),
            int_big_fallbacks: arith.int_big_fallbacks.saturating_add(run_delta.int_big_fallbacks),
        };
        let verdict = verdict.expect("repeat >= 1 guarantees at least one run");
        let min = *durations_ns.iter().min().expect("at least one run");
        let max = *durations_ns.iter().max().expect("at least one run");
        let sum: u128 = durations_ns.iter().sum();
        let mean = sum / durations_ns.len() as u128;
        total_ns += sum;
        if opts.json {
            json_pairs.push(format!(
                "{{\"index\":{index},\"containee\":{},\"containing\":{},\"verdict\":\"{}\",\
                 \"runs\":{},\"min_ns\":{min},\"mean_ns\":{mean},\"max_ns\":{max}}}",
                json::string(&containee.to_string()),
                json::string(&containing.to_string()),
                if verdict.holds() { "contained" } else { "not_contained" },
                opts.repeat,
            ));
        } else {
            let verdict_name = if verdict.holds() { "contained" } else { "not contained" };
            writeln!(
                human,
                "[{index}] {} ⊑b {}: {verdict_name:<13} min {:>8}  mean {:>8}  max {:>8}  \
                 ({} runs)",
                containee.name(),
                containing.name(),
                format_ns(min),
                format_ns(mean),
                format_ns(max),
                opts.repeat
            )
            .expect("writing to a String cannot fail");
        }
    }
    if let Some(path) = &opts.trace_out {
        write_trace(path)?;
    }
    if opts.json {
        // `hit_rate` is a JSON number or the literal `null` when the timed
        // region recorded no operations at all — both shapes round-trip
        // through `jsonv`/`verify` (pinned by tests; the totals behind the
        // rates saturate instead of wrapping on counter overflow).
        let rate_or_null = |rate: Option<f64>| match rate {
            Some(rate) => format!("{rate:.6}"),
            None => "null".to_string(),
        };
        let hit_rate = rate_or_null(arith.hit_rate());
        let int_hit_rate = rate_or_null(arith.int_hit_rate());
        let allocs_per_probe = rate_or_null(alloc.heap_allocs_per_probe());
        let metrics = if opts.metrics {
            format!(",\"metrics\":{}", metrics_json(&baseline))
        } else {
            String::new()
        };
        Ok(format!(
            "{{\"command\":\"bench\",\"algorithm\":\"{}\",\"engine\":\"{}\",\"repeat\":{},\
             \"total_ns\":{total_ns},\"arith_small_path\":{{\"small_hits\":{},\
             \"big_fallbacks\":{},\"hit_rate\":{hit_rate}}},\
             \"arith_int_path\":{{\"small_hits\":{},\"big_fallbacks\":{},\
             \"hit_rate\":{int_hit_rate}}},\
             \"alloc\":{{\"heap_allocs\":{},\"probes\":{},\
             \"heap_allocs_per_probe\":{allocs_per_probe},\"monomial_inline\":{},\
             \"monomial_spills\":{},\"scratch_reuses\":{},\"scratch_spills\":{},\
             \"pool_rows_hwm\":{}}},\"pairs\":[{}]{metrics}}}\n",
            opts.algorithm_name,
            opts.engine_name,
            opts.repeat,
            arith.small_hits,
            arith.big_fallbacks,
            arith.int_small_hits,
            arith.int_big_fallbacks,
            alloc.heap_allocs,
            alloc.probes,
            alloc.monomial_inline,
            alloc.monomial_spills,
            alloc.scratch_reuses,
            alloc.scratch_spills,
            alloc.pool_rows_hwm,
            json_pairs.join(",")
        ))
    } else {
        writeln!(
            human,
            "total: {} pair(s) × {} run(s) in {}",
            pairs.len(),
            opts.repeat,
            format_ns(total_ns)
        )
        .expect("writing to a String cannot fail");
        if let Some(rate) = arith.hit_rate() {
            writeln!(
                human,
                "arith small path: {:.1}% of {} rational op(s) stayed machine-word \
                 ({} fell back to limbs)",
                rate * 100.0,
                arith.total(),
                arith.big_fallbacks
            )
            .expect("writing to a String cannot fail");
        }
        if let Some(rate) = arith.int_hit_rate() {
            writeln!(
                human,
                "arith int path: {:.1}% of {} integer kernel op(s) stayed machine-word \
                 ({} fell back to limbs)",
                rate * 100.0,
                arith.int_total(),
                arith.int_big_fallbacks
            )
            .expect("writing to a String cannot fail");
        }
        if let Some(per_probe) = alloc.heap_allocs_per_probe() {
            writeln!(
                human,
                "alloc: {} heap alloc(s) over {} probe(s) ({per_probe:.1}/probe), \
                 {} scratch reuse(s), {} spill(s)",
                alloc.heap_allocs, alloc.probes, alloc.scratch_reuses, alloc.scratch_spills
            )
            .expect("writing to a String cannot fail");
        }
        if opts.metrics {
            human.push_str(&metrics_human(&baseline));
        }
        Ok(human)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `dispatch` against in-memory stdin/stdout; returns the captured
    /// stdout alongside the outcome (batch writes output even on failure).
    fn run_captured(args: &[&str], stdin: &str) -> (Result<(), CliError>, String) {
        let args: Vec<String> = args.iter().map(std::string::ToString::to_string).collect();
        let mut input = stdin.as_bytes();
        let mut out: Vec<u8> = Vec::new();
        let result = dispatch(&args, &mut input, &mut out);
        (result, String::from_utf8(out).expect("CLI output must be UTF-8"))
    }

    fn run_ok(args: &[&str], stdin: &str) -> String {
        match run_captured(args, stdin) {
            (Ok(()), out) => out,
            (Err(CliError::Usage(m) | CliError::Failure(m)), _) => {
                panic!("unexpected error: {m}")
            }
            (Err(CliError::Reported), _) => panic!("unexpected mid-stream failure"),
            (Err(CliError::BrokenPipe), _) => panic!("unexpected broken pipe"),
            (Err(CliError::Lints(code)), out) => panic!("unexpected lint exit {code}:\n{out}"),
        }
    }

    fn run_err(args: &[&str], stdin: &str) -> (bool, String) {
        match run_captured(args, stdin) {
            (Ok(()), out) => panic!("expected an error, got output:\n{out}"),
            (Err(CliError::Usage(m)), _) => (true, m),
            (Err(CliError::Failure(m)), _) => (false, m),
            (Err(CliError::Reported), _) => (false, "<reported on stderr>".to_string()),
            (Err(CliError::BrokenPipe), _) => panic!("unexpected broken pipe"),
            (Err(CliError::Lints(code)), out) => panic!("unexpected lint exit {code}:\n{out}"),
        }
    }

    /// Runs `check`, returning the exit code and the captured report.
    fn run_check(args: &[&str], stdin: &str) -> (i32, String) {
        match run_captured(args, stdin) {
            (Ok(()), out) => (0, out),
            (Err(CliError::Lints(code)), out) => (code, out),
            (Err(CliError::Usage(m) | CliError::Failure(m)), _) => {
                panic!("unexpected error: {m}")
            }
            (Err(CliError::Reported | CliError::BrokenPipe), _) => panic!("unexpected outcome"),
        }
    }

    const ACCEPTANCE: &str = "q(x) <- R^2(x, x). p(x) <- R(x, y), R(y, x).";

    #[test]
    fn decide_prints_a_verdict_for_the_acceptance_pair() {
        let out = run_ok(&["decide", "--bag"], ACCEPTANCE);
        assert!(out.contains("q ⊑b p"), "{out}");
        assert!(out.contains("contained"), "{out}");
        assert!(!out.contains("not contained"), "{out}");
    }

    #[test]
    fn decide_reports_counterexamples_with_the_violating_bag() {
        let out = run_ok(&["decide"], "q(x) <- R(x, x), S(x). p(x) <- R(x, x).");
        assert!(out.contains("not contained"), "{out}");
        assert!(out.contains("on bag {"), "{out}");
    }

    #[test]
    fn decide_supports_all_algorithms_and_engines() {
        for algorithm in ["most-general", "all-probes", "guess-check"] {
            for engine in ["simplex", "fourier-motzkin"] {
                let out =
                    run_ok(&["decide", "--algorithm", algorithm, "--engine", engine], ACCEPTANCE);
                assert!(out.contains("contained"), "{algorithm}/{engine}: {out}");
            }
        }
        let out =
            run_ok(&["decide", "--algorithm", "guess-check", "--budget", "100000"], ACCEPTANCE);
        assert!(out.contains("contained"), "{out}");
    }

    #[test]
    fn decide_set_semantics() {
        // Dropping a conjunct is a set containment but not a bag containment.
        let input = "q(x) <- R(x, x), S(x). p(x) <- R(x, x).";
        let set = run_ok(&["decide", "--set"], input);
        assert!(set.contains("⊑s") && set.contains("witness"), "{set}");
        let bag = run_ok(&["decide", "--bag"], input);
        assert!(bag.contains("not contained"), "{bag}");
    }

    #[test]
    fn equiv_decides_both_directions() {
        let out = run_ok(
            &["equiv"],
            "q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2).\n\
             q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2).",
        );
        assert!(out.contains("NOT equivalent"), "{out}");
        assert!(out.contains("forward") && out.contains("backward"), "{out}");
        let out = run_ok(&["equiv"], "q(x) <- R(x, x). q(x) <- R(x, x).");
        assert!(out.contains(": equivalent"), "{out}");
    }

    #[test]
    fn gen_is_reproducible_and_round_trips_through_decide() {
        let a = run_ok(&["gen", "spec", "--count", "3", "--seed", "42"], "");
        let b = run_ok(&["gen", "spec", "--count", "3", "--seed", "42"], "");
        assert_eq!(a, b, "gen must be byte-for-byte reproducible");
        let c = run_ok(&["gen", "spec", "--count", "3", "--seed", "43"], "");
        assert_ne!(a, c, "different seeds must give different workloads");
        // The emitted datalog feeds straight back into decide, and
        // specialisation pairs are contained by construction.
        let verdicts = run_ok(&["decide"], &a);
        assert_eq!(verdicts.lines().count(), 3, "{verdicts}");
        assert!(verdicts.lines().all(|l| l.contains("contained")), "{verdicts}");
        assert!(!verdicts.contains("not contained"), "{verdicts}");
    }

    #[test]
    fn gen_header_records_the_effective_size() {
        // The provenance header must regenerate the workload verbatim, so it
        // records the resolved --size even when the caller relied on the
        // default.
        let out = run_ok(&["gen", "spec", "--count", "2", "--seed", "5"], "");
        assert!(out.starts_with("% diophantus gen spec --count 2 --size 4 --seed 5\n"), "{out}");
        let sized = run_ok(&["gen", "spec", "--count", "2", "--size", "4", "--seed", "5"], "");
        assert_eq!(out, sized, "explicit default size must match the recorded command");
        let json = run_ok(&["gen", "--json", "--count", "1", "--size", "3", "--seed", "5"], "");
        assert!(json.contains("\"size\":3"), "{json}");
    }

    #[test]
    fn gen_covers_every_kind() {
        for kind in [
            "spec",
            "inflated",
            "contained",
            "path",
            "expmap",
            "threecol",
            "chain",
            "star",
            "clique",
        ] {
            let out = run_ok(&["gen", kind, "--count", "2", "--seed", "7"], "");
            assert_eq!(out.matches("% pair").count(), 2, "{kind}: {out}");
            // Every emitted query parses back.
            let queries = dioph_cq::parse_program(&out).expect(kind);
            assert_eq!(queries.len(), 4, "{kind}");
        }
    }

    #[test]
    fn bench_reports_latency_stats() {
        let out = run_ok(&["bench", "--repeat", "2"], ACCEPTANCE);
        assert!(out.contains("min") && out.contains("mean") && out.contains("max"), "{out}");
        assert!(out.contains("total: 1 pair(s) × 2 run(s)"), "{out}");
    }

    #[test]
    fn bench_json_reports_small_path_hit_rates() {
        // A pair whose MPI route genuinely reaches the LP (the ACCEPTANCE
        // pair short-circuits on a zero row before any rational arithmetic).
        let input = "q(x) <- R^2(x, x). p(x) <- R^3(x, x).";
        let out = run_ok(&["bench", "--json", "--repeat", "2"], input);
        assert!(out.contains("\"arith_small_path\":{\"small_hits\":"), "{out}");
        assert!(out.contains("\"big_fallbacks\":"), "{out}");
        assert!(out.contains("\"hit_rate\":"), "{out}");
        // The acceptance pair routes through the simplex, whose pivots live
        // on the machine-word path at this size: some hits must be recorded.
        let hits: u64 = out
            .split("\"small_hits\":")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|n| n.parse().ok())
            .expect("small_hits must be a JSON number");
        assert!(hits > 0, "{out}");
    }

    #[test]
    fn bench_json_reports_the_alloc_block() {
        // The allocation-discipline block sits next to the arith fast-path
        // tallies and covers exactly the timed repeat loops.
        // A 16-probe pair, so the per-pair scratch demonstrably serves many
        // probes per decision.
        let input = "q(x1, x2) <- R(x1, x2), R('c1', x2), R^3(x1, 'c2').\n\
                     p(x1, x2) <- R(x1, x2), R('c1', x2), R^3(x1, 'c2').";
        let out = run_ok(&["bench", "--json", "--repeat", "2", "--algorithm", "all-probes"], input);
        let doc = Json::parse(out.trim_end()).expect("bench --json must be valid JSON");
        let alloc = doc.get("alloc").unwrap_or_else(|| panic!("alloc block missing: {out}"));
        for key in [
            "heap_allocs",
            "probes",
            "heap_allocs_per_probe",
            "monomial_inline",
            "monomial_spills",
            "scratch_reuses",
            "scratch_spills",
            "pool_rows_hwm",
        ] {
            assert!(alloc.get(key).is_some(), "alloc.{key} missing: {out}");
        }
        // The timed region decided probes, so the denominator is live and
        // the per-probe figure is a number (not null). The heap count itself
        // is zero here — the in-process test harness installs no counting
        // allocator — which is exactly the documented fallback shape.
        let probes = match alloc.get("probes") {
            Some(Json::Number(n)) => *n,
            other => panic!("alloc.probes must be a number, got {other:?}"),
        };
        assert!(probes > 0.0, "{out}");
        assert!(
            matches!(alloc.get("heap_allocs_per_probe"), Some(Json::Number(_))),
            "per-probe figure must be a number when probes were decided: {out}"
        );
        // All-probes over one pair reuses the per-pair scratch: every probe
        // after the first of each repeat counts as a warmed reuse.
        let reuses = match alloc.get("scratch_reuses") {
            Some(Json::Number(n)) => *n,
            other => panic!("alloc.scratch_reuses must be a number, got {other:?}"),
        };
        assert!(reuses > 0.0, "{out}");
    }

    #[test]
    fn lp_route_is_output_invariant() {
        // The fraction-free route must not change a byte of any output mode
        // (the envelope keeps naming the engine family, not the route).
        let input = "q(x) <- R^2(x, x). p(x) <- R^3(x, x).\n\
                     q2(x) <- R(x, x), S(x). p2(x) <- R(x, x).";
        for command in ["decide", "equiv", "batch"] {
            let workload =
                if command == "equiv" { "q(x) <- R^2(x, x). p(x) <- R^3(x, x)." } else { input };
            for extra in [&[][..], &["--json"][..]] {
                let mut base = vec![command];
                base.extend_from_slice(extra);
                let reference = run_ok(&base, workload);
                for route in ["simplex", "bareiss", "auto", "fraction-free", "rational"] {
                    let mut routed = base.clone();
                    routed.extend_from_slice(&["--lp-route", route]);
                    assert_eq!(
                        run_ok(&routed, workload),
                        reference,
                        "{command} {extra:?} diverged under --lp-route {route}"
                    );
                }
            }
        }
    }

    #[test]
    fn lp_route_usage_errors() {
        assert!(run_err(&["decide", "--lp-route", "abacus"], "").0);
        assert!(run_err(&["decide", "--lp-route"], "").0, "--lp-route needs a value");
        assert!(
            run_err(&["decide", "--engine", "fourier-motzkin", "--lp-route", "bareiss"], "").0,
            "the route refines the simplex engine only"
        );
        assert!(run_err(&["decide", "--set", "--lp-route", "bareiss"], "").0);
        assert!(run_err(&["gen", "--lp-route", "bareiss"], "").0, "gen has no LP");
        // Explicitly restating the default simplex engine is fine.
        let out = run_ok(
            &["decide", "--engine", "simplex", "--lp-route", "bareiss"],
            "q(x) <- R(x, x). p(x) <- R(x, x).",
        );
        assert!(out.contains("contained"), "{out}");
    }

    #[test]
    fn bench_json_round_trips_through_jsonv_and_verify() {
        // The bench document must parse with the in-house JSON reader —
        // including the `"hit_rate":null` shape when a counter saw no ops —
        // and `verify` must accept it instead of erroring on the
        // certificate-free pair entries.
        let input = "q(x) <- R^2(x, x). p(x) <- R^3(x, x).";
        let out = run_ok(&["bench", "--json", "--repeat", "2"], input);
        let doc = Json::parse(out.trim_end()).expect("bench --json must be valid JSON");
        for section in ["arith_small_path", "arith_int_path"] {
            let rate = doc
                .get(section)
                .and_then(|s| s.get("hit_rate"))
                .unwrap_or_else(|| panic!("{section}.hit_rate missing: {out}"));
            assert!(
                matches!(rate, Json::Null | Json::Number(_)),
                "{section}.hit_rate must be null or a number, got {rate:?}"
            );
        }
        let verified = run_ok(&["verify"], &out);
        assert!(verified.contains("bench timing entry"), "{verified}");
        assert!(verified.contains("1 timing-only entry"), "{verified}");
        assert!(verified.contains("0 failure(s)"), "{verified}");
        // A synthetic zero-op document pins the null branch end to end.
        let null_doc = "{\"command\":\"bench\",\"algorithm\":\"most-general\",\
             \"engine\":\"simplex\",\"repeat\":1,\"total_ns\":0,\
             \"arith_small_path\":{\"small_hits\":0,\"big_fallbacks\":0,\"hit_rate\":null},\
             \"arith_int_path\":{\"small_hits\":0,\"big_fallbacks\":0,\"hit_rate\":null},\
             \"pairs\":[{\"index\":1,\"containee\":\"q(x) <- R(x, x)\",\
             \"containing\":\"p(x) <- R(x, x)\",\"verdict\":\"contained\",\"runs\":1,\
             \"min_ns\":1,\"mean_ns\":1,\"max_ns\":1}]}";
        assert_eq!(
            Json::parse(null_doc)
                .expect("shape must parse")
                .get("arith_small_path")
                .and_then(|s| s.get("hit_rate")),
            Some(&Json::Null)
        );
        let verified = run_ok(&["verify"], null_doc);
        assert!(verified.contains("0 failure(s)"), "{verified}");
    }

    #[test]
    fn certificate_less_entries_outside_bench_envelopes_still_fail_verification() {
        // Tamper scenario: strip a decide pair's "result" certificate and
        // plant a bare "verdict" string. The bench timing-entry path must
        // not wave it through — only a "command":"bench" envelope may carry
        // certificate-less entries.
        let honest = run_ok(&["decide", "--json"], "q(x) <- R(x, x), S(x). p(x) <- R(x, x).");
        let (before, _) = honest.split_once(",\"result\":").expect("decide emits a result");
        let tampered = format!("{before},\"verdict\":\"not_contained\"}}]}}\n");
        assert!(Json::parse(tampered.trim_end()).is_ok(), "fixture must stay valid JSON");
        let (result, _) = run_captured(&["verify"], &tampered);
        let Err(CliError::Failure(message)) = result else {
            panic!("a certificate-less decide entry must fail verification");
        };
        assert!(message.contains("neither"), "{message}");
    }

    #[test]
    fn json_outputs_have_the_expected_envelopes() {
        let out = run_ok(&["decide", "--json"], ACCEPTANCE);
        assert!(out.starts_with("{\"command\":\"decide\",\"semantics\":\"bag\""), "{out}");
        assert!(out.contains("\"verdict\":\"contained\""), "{out}");
        let out = run_ok(&["equiv", "--json"], "q(x) <- R(x, x). q(x) <- R(x, x).");
        assert!(out.contains("\"equivalent\":true"), "{out}");
        let out = run_ok(&["gen", "--json", "--count", "1", "--seed", "1"], "");
        assert!(out.starts_with("{\"command\":\"gen\""), "{out}");
        let out = run_ok(&["bench", "--json", "--repeat", "1"], ACCEPTANCE);
        assert!(out.contains("\"min_ns\":"), "{out}");
    }

    #[test]
    fn batch_streams_one_verdict_line_per_pair_in_input_order() {
        let input = "q1(x) <- R(x, x). p1(x) <- R(x, x).\n\
                     q2(x) <- R(x, x), S(x). p2(x) <- R(x, x).\n\
                     q3(x) <- R^2(x, x). p3(x) <- R(x, y), R(y, x).\n";
        for jobs in ["1", "2", "4"] {
            let out = run_ok(&["batch", "--jobs", jobs], input);
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 3, "jobs={jobs}: {out}");
            assert!(lines[0].starts_with("[1] q1 ⊑b p1: contained"), "{out}");
            assert!(lines[1].starts_with("[2] q2 ⊑b p2: not contained"), "{out}");
            assert!(lines[2].starts_with("[3] q3 ⊑b p3: contained"), "{out}");
        }
    }

    #[test]
    fn batch_json_lines_carry_the_same_certificates_as_decide() {
        let input = "q(x) <- R(x, x), S(x). p(x) <- R(x, x).";
        let batch = run_ok(&["batch", "--json", "--jobs", "2"], input);
        let decide = run_ok(&["decide", "--json"], input);
        // One JSON object per line, embedding the same result object the
        // decide envelope carries.
        assert_eq!(batch.lines().count(), 1, "{batch}");
        assert!(batch.starts_with("{\"id\":1,"), "{batch}");
        let result = batch
            .split_once("\"result\":")
            .map(|(_, tail)| tail.trim_end().trim_end_matches('}'))
            .unwrap();
        assert!(decide.contains(result), "decide output {decide} must embed {result}");
    }

    #[test]
    fn batch_empty_stream_is_not_an_error() {
        assert_eq!(run_ok(&["batch"], ""), "");
        assert_eq!(run_ok(&["batch"], "% nothing but comments\n"), "");
    }

    #[test]
    fn batch_without_keep_going_stops_at_the_first_failure() {
        let input = "q1(x) <- R(x, x). p1(x) <- R(x, x).\n\
                     broken(x <- R(x, x). p2(x) <- R(x, x).\n\
                     q3(x) <- R(x, x). p3(x) <- R(x, x).\n";
        let (result, out) = run_captured(&["batch"], input);
        // The diagnostic goes straight to stderr mid-stream (the abort may
        // have to wait for the input's next line), so dispatch reports a
        // bare already-reported failure.
        assert!(matches!(result, Err(CliError::Reported)), "expected a failure, got {out}");
        assert!(out.contains("[1] q1 ⊑b p1"), "verdicts before the failure stream out: {out}");
        assert!(!out.contains("[3]"), "the stream must stop at the failure: {out}");
    }

    #[test]
    fn batch_keep_going_emits_error_lines_and_continues() {
        let input = "q1(x) <- R(x, x). p1(x) <- R(x, x).\n\
                     broken(x <- R(x, x). p2(x) <- R(x, x).\n\
                     q3(x) <- R(x, y). p3(x) <- R(x, x).\n\
                     q4(x) <- R(x, x). p4(x) <- R(x, x).\n";
        let (result, out) = run_captured(&["batch", "--keep-going", "--jobs", "3"], input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[1].starts_with("[2] parse error:"), "{out}");
        assert!(lines[2].starts_with("[3] decide error:"), "{out}");
        assert!(lines[2].contains("projection-free"), "{out}");
        assert!(lines[3].starts_with("[4] q4 ⊑b p4: contained"), "{out}");
        // The run still exits non-zero so scripts notice the failures.
        let Err(CliError::Failure(message)) = result else {
            panic!("keep-going with failures must still fail overall");
        };
        assert!(message.contains("2 of 4"), "{message}");

        let json = run_captured(&["batch", "--keep-going", "--json"], input).1;
        assert!(json.lines().count() == 4, "{json}");
        assert!(json.contains("\"error\":{\"stage\":\"parse\""), "{json}");
        assert!(json.contains("\"error\":{\"stage\":\"decide\""), "{json}");
    }

    #[test]
    fn decide_and_equiv_with_jobs_match_the_sequential_output_bytes() {
        // equiv needs both sides projection-free (each acts as containee), so
        // it gets a handcrafted workload; decide takes a generated one.
        let equiv_workload = "q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2).\n\
                              q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2).\n\
                              q3(x) <- R(x, x), S(x). q4(x) <- R(x, x).\n";
        let decide_workload = run_ok(&["gen", "inflated", "--count", "4", "--seed", "11"], "");
        for (command, workload) in
            [("decide", &decide_workload), ("equiv", &equiv_workload.to_string())]
        {
            for extra in [&[][..], &["--json"][..], &["--algorithm", "all-probes"][..]] {
                let mut base = vec![command];
                base.extend_from_slice(extra);
                let sequential = run_ok(&base, workload);
                let mut parallel_args = base.clone();
                parallel_args.extend_from_slice(&["--jobs", "4"]);
                let parallel = run_ok(&parallel_args, workload);
                assert_eq!(
                    parallel, sequential,
                    "{command} {extra:?} must be byte-identical under --jobs 4"
                );
            }
        }
    }

    #[test]
    fn verify_confirms_decide_equiv_and_batch_certificates() {
        let failing = "q(x) <- R(x, x), S(x). p(x) <- R(x, x).";
        let decide_json = run_ok(&["decide", "--json"], failing);
        let out = run_ok(&["verify"], &decide_json);
        assert!(out.contains("[1] q ⋢b p: counterexample verified (2 > 1)"), "{out}");
        assert!(out.contains("verify: 1 counterexample(s) verified"), "{out}");

        let equiv_json = run_ok(&["equiv", "--json"], "q(x) <- R^2(x, x). p(x) <- R(x, x).");
        let out = run_ok(&["verify"], &equiv_json);
        assert!(out.contains("[1 forward]"), "{out}");
        assert!(out.contains("[1 backward]"), "{out}");

        let batch_json = run_captured(
            &["batch", "--json", "--keep-going"],
            "q(x) <- R(x, x), S(x). p(x) <- R(x, x).\nbroken( <- R(x, x). p(x) <- R(x, x).\n",
        )
        .1;
        let out = run_ok(&["verify"], &batch_json);
        assert!(out.contains("[1] q ⋢b p: counterexample verified"), "{out}");
        assert!(out.contains("[2] recorded parse error: nothing to re-check"), "{out}");
    }

    #[test]
    fn verify_rejects_tampered_certificates() {
        let failing = "q(x) <- R(x, x), S(x). p(x) <- R(x, x).";
        let honest = run_ok(&["decide", "--json"], failing);

        // Tamper with the recorded multiplicity: the evaluator must object.
        let tampered =
            honest.replace("\"containee_multiplicity\":\"2\"", "\"containee_multiplicity\":\"9\"");
        assert_ne!(honest, tampered, "the fixture must actually change");
        let (result, out) = run_captured(&["verify"], &tampered);
        assert!(matches!(result, Err(CliError::Failure(_))));
        assert!(out.contains("VERIFICATION FAILED"), "{out}");
        assert!(out.contains("evaluator says 2"), "{out}");

        // Tamper with the bag so it no longer violates containment.
        let harmless = honest.replace("\"multiplicity\":\"2\"", "\"multiplicity\":\"1\"");
        let (result, out) = run_captured(&["verify"], &harmless);
        assert!(matches!(result, Err(CliError::Failure(_))), "{out}");
        assert!(out.contains("VERIFICATION FAILED"), "{out}");
    }

    #[test]
    fn verify_rejects_unusable_inputs() {
        let (usage, _) = run_err(&["verify", "--json"], "");
        assert!(usage, "verify takes no flags");
        let (usage, message) = run_err(&["verify"], "{\"pairs\":[]}");
        assert!(!usage);
        assert!(message.contains("no certificates"), "{message}");
        let (_, message) = run_err(&["verify"], "not json at all");
        assert!(message.contains("not JSON"), "{message}");
        let (_, message) = run_err(&["verify"], "{\"something\":\"else\"}");
        assert!(message.contains("unrecognised"), "{message}");
    }

    #[test]
    fn parse_errors_name_the_line_and_column() {
        let (usage, message) = run_err(&["decide"], "q(x <- R(x, x).");
        assert!(!usage, "parse errors are failures, not usage errors");
        assert!(message.contains("<stdin>:1:5"), "{message}");
    }

    #[test]
    fn unpaired_queries_are_rejected() {
        let (_, message) = run_err(&["decide"], "q(x) <- R(x, x).");
        assert!(message.contains("even number"), "{message}");
        let (_, message) = run_err(&["decide"], "% only comments\n");
        assert!(message.contains("no queries"), "{message}");
    }

    #[test]
    fn undecidable_containees_fail_with_context() {
        let (_, message) = run_err(&["decide"], "q(x) <- R(x, y). p(x) <- R(x, x).");
        assert!(message.contains("projection-free"), "{message}");
    }

    #[test]
    fn decide_fragment_errors_name_the_position_of_the_variable() {
        // The projection-bearing variable y sits at line 1, column 14.
        let (usage, message) = run_err(&["decide"], "q(x) <- R(x, y).\np(x) <- R(x, x).");
        assert!(!usage);
        assert!(message.starts_with("<stdin>:1:14: error[D002]"), "{message}");
        assert!(message.contains("cannot decide q ⊑b p"), "{message}");
        // An unsafe containee points at the offending head variable.
        let (_, message) = run_err(&["decide"], "q(x, z) <- R(x, x).\np(x, z) <- R(x, z).");
        assert!(message.starts_with("<stdin>:1:6: error[D001]"), "{message}");
        // equiv validates both sides; a right-hand defect is positioned too.
        let (_, message) = run_err(&["equiv"], "q(x) <- R(x, x).\np(x) <- R(x, y).\n");
        assert!(message.starts_with("<stdin>:2:14: error[D002]"), "{message}");
        assert!(message.contains("cannot decide p ⊑b q"), "{message}");
        // decide only validates the left side: the same program decides fine.
        let out = run_ok(&["decide"], "q(x) <- R(x, x).\np(x) <- R(x, y).\n");
        assert!(out.contains("q ⊑b p"), "{out}");
        // Set semantics accepts projection-bearing containees unchanged.
        let out = run_ok(&["decide", "--set"], "q(x) <- R(x, y).\np(x) <- R(x, x).");
        assert!(out.contains("⊑s"), "{out}");
    }

    #[test]
    fn check_clean_program_is_exit_zero_with_fragment_labels() {
        let (code, out) = run_check(&["check"], ACCEPTANCE);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pair 1 (q ⊑b p): paper-decidable"), "{out}");
        assert!(!out.contains("error["), "{out}");
    }

    #[test]
    fn check_reports_spanned_diagnostics_with_severity_exit_codes() {
        // An error-level defect (projection-bearing containee): exit 2.
        let (code, out) = run_check(&["check"], "q(x) <- R(x, y).\np(x) <- R(x, x).");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("<stdin>:1:14: error[D002]"), "{out}");
        assert!(out.contains("pair 1 (q ⊑b p): bag-set"), "{out}");
        assert!(out.contains("check: 1 error(s)"), "{out}");
        // A warning-level defect (duplicate atom): exit 1.
        let dup = "q(x) <- R(x, x), R(x, x).\np(x) <- R(x, x).";
        let (code, out) = run_check(&["check"], dup);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("warning[D013]"), "{out}");
        // --deny warnings promotes it to exit 2; --allow silences it.
        let (code, _) = run_check(&["check", "--deny", "warnings"], dup);
        assert_eq!(code, 2);
        let (code, out) = run_check(&["check", "--allow", "duplicate-atom"], dup);
        assert_eq!(code, 0, "{out}");
        // -W opts an allow-by-default lint in.
        let cart = "q(x, y) <- R(x, x), S(y, y).\np(x, y) <- R(x, y), S(y, x).";
        let (code, _) = run_check(&["check"], cart);
        assert_eq!(code, 0);
        let (code, out) = run_check(&["check", "-W", "cartesian-product-body"], cart);
        assert_eq!(code, 1);
        assert!(out.contains("warning[D011]"), "{out}");
        // A syntax error is a D000 diagnostic, not a CLI failure.
        let (code, out) = run_check(&["check"], "q(x <- R(x, x).");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("error[D000]"), "{out}");
    }

    #[test]
    fn check_json_documents_the_run() {
        let (code, out) =
            run_check(&["check", "--json"], "q(x) <- R(x, x), R(x, x).\np(x) <- R(x, x).");
        assert_eq!(code, 1, "{out}");
        assert!(out.starts_with("{\"command\":\"check\","), "{out}");
        assert!(out.contains("\"code\":\"D013\""), "{out}");
        assert!(out.contains("\"span\":{\"start\":17,\"end\":24}"), "{out}");
        assert!(out.contains("\"fragment\":\"paper-decidable\""), "{out}");
        assert!(out.contains("\"cost\":{\"probe_space\":1,"), "{out}");
        assert!(
            out.contains("\"summary\":{\"errors\":0,\"warnings\":1,\"notes\":0,\"exit\":1}"),
            "{out}"
        );
        assert!(out.ends_with("}\n"), "{out}");
    }

    #[test]
    fn check_rejects_unknown_lints_and_flags() {
        assert!(run_err(&["check", "--deny", "D999"], "").0);
        assert!(run_err(&["check", "--allow", "nonsense"], "").0);
        assert!(run_err(&["check", "-W"], "").0, "-W needs a value");
        assert!(run_err(&["check", "--frobnicate"], "").0);
    }

    #[test]
    fn usage_errors() {
        assert!(run_err(&["frobnicate"], "").0);
        assert!(run_err(&["decide", "--algorithm", "magic"], "").0);
        assert!(run_err(&["decide", "--engine", "abacus"], "").0);
        assert!(run_err(&["gen", "nope"], "").0);
        assert!(run_err(&["gen", "--seed"], "").0);
        assert!(run_err(&["bench", "--set"], "").0);
        assert!(run_err(&["bench", "--repeat", "0"], "").0);
        assert!(run_err(&["decide", "--repeat", "3"], "").0, "--repeat is bench-only");
        assert!(run_err(&["equiv", "--repeat", "3"], "").0, "--repeat is bench-only");
        assert!(run_err(&["decide", "--set", "--engine", "simplex"], "").0, "set ignores engine");
        assert!(run_err(&["decide", "--set", "--algorithm", "all-probes"], "").0);
        assert!(run_err(&["decide", "--set", "--budget", "9"], "").0);
        assert!(run_err(&["decide", "--budget", "9"], "").0, "budget needs guess-check");
        assert!(run_err(&["gen", "path", "--size", "0"], "").0, "path needs size >= 1");
        assert!(run_err(&["gen", "threecol", "--size", "0"], "").0);
        assert!(run_err(&["gen", "chain", "--size", "0"], "").0, "chain needs size >= 1");
        assert!(run_err(&["gen", "star", "--size", "0"], "").0, "star needs size >= 1");
        assert!(run_err(&["gen", "clique", "--size", "1"], "").0, "clique needs size >= 2");
        assert!(run_err(&["decide", "--jobs", "0"], "").0, "--jobs must be positive");
        assert!(run_err(&["decide", "--set", "--jobs", "2"], "").0, "set path has no engine");
        assert!(run_err(&["decide", "--keep-going"], "").0, "--keep-going is batch-only");
        assert!(run_err(&["bench", "--jobs", "2"], "").0, "bench is sequential");
        assert!(run_err(&["bench", "--keep-going"], "").0);
        assert!(run_err(&["batch", "--set"], "").0, "batch is bag-only");
        assert!(run_err(&["batch", "--repeat", "2"], "").0, "--repeat is bench-only");
        assert!(run_err(&["decide", "--set", "--metrics"], "").0, "metrics is bag-only");
        assert!(run_err(&["decide", "--bag-set", "--trace-out", "t.json"], "").0);
        assert!(run_err(&["equiv", "--set", "--metrics"], "").0);
        assert!(run_err(&["gen", "--metrics"], "").0, "gen has no decision pipeline");
        assert!(run_err(&["check", "--trace-out", "t.json"], "").0);
        assert!(run_err(&["decide", "--trace-out"], "").0, "--trace-out needs a FILE");
        assert!(run_err(&[], "").0);
    }

    // -- metrics / tracing --------------------------------------------------
    //
    // In-process tests share one registry across the whole (parallel) test
    // binary, so commands running concurrently can bleed counter increments
    // into each other's deltas. These tests therefore assert structure only;
    // the byte-for-byte determinism contract is pinned by tests/metrics.rs,
    // which spawns one isolated process per command line.

    #[test]
    fn decide_json_metrics_member_is_well_formed() {
        let out = run_ok(&["decide", "--json", "--metrics"], ACCEPTANCE);
        assert!(out.contains(",\"metrics\":{\"counters\":{"), "{out}");
        let doc = Json::parse(out.trim_end()).expect("envelope must stay valid JSON");
        let metrics = doc.get("metrics").expect("metrics member");
        let Some(Json::Object(counters)) = metrics.get("counters") else {
            panic!("counters must be an object: {out}");
        };
        let expected: Vec<&str> = dioph_obs::counters()
            .iter()
            .filter(|c| c.stability() == dioph_obs::Stability::Deterministic)
            .map(|c| c.name())
            .collect();
        let names: Vec<&str> = counters.keys().map(String::as_str).collect();
        assert_eq!(names, expected, "deterministic block must hold exactly the registry cells");
        assert!(metrics.get("volatile").is_some(), "{out}");
        assert!(metrics.get("phases").and_then(Json::as_array).is_some(), "{out}");
        assert!(metrics.get("workers").and_then(Json::as_array).is_some(), "{out}");
        // Without the flag the envelope must not mention metrics at all.
        let plain = run_ok(&["decide", "--json"], ACCEPTANCE);
        assert!(!plain.contains("metrics"), "{plain}");
    }

    #[test]
    fn decide_human_metrics_breakdown_is_labelled() {
        let out = run_ok(&["decide", "--metrics"], ACCEPTANCE);
        assert!(out.contains("metrics (this command):"), "{out}");
        assert!(out.contains("engine.pairs_decided"), "{out}");
        let plain = run_ok(&["decide"], ACCEPTANCE);
        assert!(!plain.contains("metrics"), "{plain}");
    }

    #[test]
    fn batch_bench_fuzz_emit_metrics_under_json() {
        let batch = run_ok(&["batch", "--json", "--metrics"], ACCEPTANCE);
        let trailer = batch.lines().last().expect("batch emits a metrics trailer");
        let doc = Json::parse(trailer).expect("trailer must be JSON");
        assert!(doc.get("metrics").and_then(|m| m.get("counters")).is_some(), "{batch}");

        let bench = run_ok(&["bench", "--json", "--repeat", "1", "--metrics"], ACCEPTANCE);
        let doc = Json::parse(bench.trim_end()).expect("bench envelope must be JSON");
        assert!(doc.get("metrics").and_then(|m| m.get("phases")).is_some(), "{bench}");

        let fuzz = run_ok(&["fuzz", "--json", "--cases", "2", "--metrics"], "");
        let doc = Json::parse(fuzz.trim_end()).expect("fuzz envelope must be JSON");
        assert!(doc.get("metrics").and_then(|m| m.get("counters")).is_some(), "{fuzz}");
        assert!(doc.get("summary").is_some(), "metrics must not displace the report: {fuzz}");
    }

    #[test]
    fn trace_out_writes_a_chrome_trace() {
        let dir = std::env::temp_dir().join(format!("dioph-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("decide.trace.json");
        let path_str = path.to_str().expect("temp path is UTF-8");
        run_ok(&["decide", "--jobs", "2", "--trace-out", path_str], ACCEPTANCE);
        let text = std::fs::read_to_string(&path).expect("trace file must exist");
        let doc = Json::parse(&text).expect("trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
        assert!(!events.is_empty(), "{text}");
        for event in events {
            let ph = event.get("ph").and_then(Json::as_str).expect("ph");
            assert!(matches!(ph, "X" | "M"), "unexpected phase record {ph}: {text}");
            assert!(event.get("pid").is_some() && event.get("tid").is_some(), "{text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A fully synthetic, value-controlled metrics block (in-process runs
    /// cannot guarantee delta purity, so verify is tested against synthetic
    /// splices rather than live output).
    fn synthetic_metrics(contained: u64, pairs: u64, volatile: &str) -> String {
        format!(
            "{{\"counters\":{{\"engine.batch.failures\":0,\"engine.batch.jobs\":0,\
             \"engine.pairs_decided\":{pairs},\"engine.verdicts.contained\":{contained},\
             \"engine.verdicts.not_contained\":0,\"parse.queries\":2}},\
             \"volatile\":{{{volatile}}},\
             \"phases\":[{{\"phase\":\"probe\",\"calls\":4,\"wall_ns\":812}}],\
             \"workers\":[{{\"pool\":\"probe\",\"worker\":0,\"claims\":4,\
             \"busy_ns\":812,\"max_unit_ns\":311}}]}}"
        )
    }

    #[test]
    fn verify_acknowledges_metrics_blocks() {
        let envelope = run_ok(&["decide", "--json"], ACCEPTANCE);
        let spliced = format!(
            "{},\"metrics\":{}}}\n",
            envelope.trim_end().strip_suffix('}').expect("decide envelope is an object"),
            synthetic_metrics(1, 1, "\"lp.simplex.pivots\":3")
        );
        let out = run_ok(&["verify"], &spliced);
        assert!(out.contains("[metrics] metrics block verified"), "{out}");
        assert!(out.contains("1 metrics block(s), 0 failure(s)"), "{out}");

        // The batch trailer shape: a bare {"metrics":...} line.
        let trailer = format!("{{\"metrics\":{}}}\n", synthetic_metrics(2, 3, ""));
        let out = run_ok(&["verify"], &trailer);
        assert!(out.contains("1 metrics block(s)"), "{out}");

        // Metrics-free documents keep the historical summary line verbatim.
        let out = run_ok(&["verify"], &envelope);
        assert!(!out.contains("metrics"), "{out}");
    }

    #[test]
    fn verify_rejects_corrupted_metrics_blocks() {
        let reject = |metrics: &str, why: &str| {
            let line = format!("{{\"metrics\":{metrics}}}\n");
            let (usage, message) = run_err(&["verify"], &line);
            assert!(!usage, "{why}: expected a verification failure, got usage error");
            assert!(message.contains("failed verification"), "{why}: {message}");
        };
        // More verdicts than decided pairs.
        reject(&synthetic_metrics(5, 1, ""), "verdict invariant");
        // A volatile counter the registry does not define.
        reject(&synthetic_metrics(1, 1, "\"lp.warp.calls\":1"), "unknown volatile counter");
        // A deterministic block missing registry cells.
        reject(
            "{\"counters\":{\"engine.pairs_decided\":1},\"volatile\":{},\"phases\":[],\
             \"workers\":[]}",
            "incomplete deterministic block",
        );
        // Negative and fractional counters are not counts.
        reject(&synthetic_metrics(1, 1, "\"lp.simplex.pivots\":-2"), "negative volatile counter");
    }

    #[test]
    fn help_and_version() {
        let help = run_ok(&["help"], "");
        for needle in
            ["decide", "equiv", "fuzz", "gen", "bench", "docs/grammar.md", "ARCHITECTURE.md"]
        {
            assert!(help.contains(needle), "help must mention {needle}");
        }
        let version = run_ok(&["--version"], "");
        assert!(version.starts_with("diophantus "), "{version}");
    }

    #[test]
    fn decide_bag_set_semantics_coincides_with_set_on_the_fragment() {
        // R^2(x,x) ⊑ R(x,x): contained under set and bag-set semantics
        // (multiplicities are invisible on set databases), NOT under bag.
        let input = "q(x) <- R^2(x, x). p(x) <- R(x, x).";
        let out = run_ok(&["decide", "--bag-set"], input);
        assert!(out.contains("q ⊑bs p"), "{out}");
        assert!(out.contains("contained (witness homomorphism"), "{out}");
        let bag = run_ok(&["decide", "--bag"], input);
        assert!(bag.contains("not contained"), "{bag}");
        let set = run_ok(&["decide", "--set"], input);
        assert_eq!(
            out.replace("⊑bs", "⊑s"),
            set,
            "bag-set verdicts must coincide with set on the fragment"
        );
        // equiv decides both directions with the ≡bs symbol.
        let out = run_ok(&["equiv", "--bag-set"], input);
        assert!(out.contains("q ≡bs p: equivalent"), "{out}");
        // The JSON envelope names the semantics.
        let json = run_ok(&["decide", "--bag-set", "--json"], input);
        assert!(json.contains("\"semantics\":\"bag-set\""), "{json}");
        assert!(json.contains("\"witness\":"), "{json}");
    }

    #[test]
    fn decide_bag_set_enforces_the_containee_fragment() {
        // Unlike --set, the bag-set mode rejects projection-bearing
        // containees — the Section 3 coincidence only covers the fragment.
        let input = "q(x) <- R(x, y).\np(x) <- R(x, x).";
        let (usage, message) = run_err(&["decide", "--bag-set"], input);
        assert!(!usage);
        assert!(message.starts_with("<stdin>:1:14: error[D002]"), "{message}");
        assert!(message.contains("cannot decide q ⊑bs p"), "{message}");
        let out = run_ok(&["decide", "--set"], input);
        assert!(out.contains("⊑s"), "{out}");
        // Bag-only engine flags stay rejected under --bag-set.
        assert!(run_err(&["decide", "--bag-set", "--jobs", "2"], "").0);
        assert!(run_err(&["decide", "--bag-set", "--lp-route", "bareiss"], "").0);
        assert!(run_err(&["decide", "--bag-set", "--algorithm", "all-probes"], "").0);
        assert!(run_err(&["batch", "--bag-set"], "").0, "batch is bag-only");
        assert!(run_err(&["bench", "--bag-set"], "").0, "bench is bag-only");
    }

    #[test]
    fn fuzz_runs_clean_and_is_reproducible() {
        let args = &["fuzz", "--cases", "8", "--seed", "7", "--samples", "8"];
        let a = run_ok(args, "");
        assert!(a.contains("fuzz seed 7: 8 case(s)"), "{a}");
        assert!(a.contains("0 disagreement(s)"), "{a}");
        assert_eq!(a, run_ok(args, ""), "fuzz must be reproducible");
    }

    #[test]
    fn fuzz_json_is_byte_identical_across_jobs_and_routes() {
        let base = &["fuzz", "--cases", "6", "--seed", "3", "--samples", "8", "--json"];
        let reference = run_ok(base, "");
        assert!(
            reference.starts_with("{\"command\":\"fuzz\",\"seed\":3,\"cases\":6,"),
            "{reference}"
        );
        for extra in [
            &["--jobs", "4"][..],
            &["--lp-route", "bareiss"][..],
            &["--lp-route", "auto", "--jobs", "2"][..],
        ] {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            assert_eq!(run_ok(&args, ""), reference, "fuzz --json diverged under {extra:?}");
        }
    }

    #[test]
    fn fuzz_injected_bugs_exit_nonzero_with_minimized_reproducers() {
        for bug in ["flip-verdict", "tamper-certificate"] {
            let (result, out) = run_captured(
                &["fuzz", "--cases", "8", "--seed", "7", "--samples", "8", "--inject", bug],
                "",
            );
            let Err(CliError::Failure(message)) = result else {
                panic!("--inject {bug} must make the run fail:\n{out}");
            };
            assert!(message.contains("disagreement(s) found"), "{bug}: {message}");
            assert!(out.contains("minimized containee:"), "{bug}: {out}");
            assert!(out.contains("minimized containing:"), "{bug}: {out}");
        }
    }

    #[test]
    fn fuzz_usage_errors() {
        assert!(run_err(&["fuzz", "--cases", "3", "--replay", "dir"], "").0);
        assert!(run_err(&["fuzz", "--inject", "nonsense"], "").0);
        assert!(run_err(&["fuzz", "--lp-route", "abacus"], "").0);
        assert!(run_err(&["fuzz", "--jobs", "0"], "").0);
        assert!(run_err(&["fuzz", "--max-adom", "0"], "").0);
        assert!(run_err(&["fuzz", "--max-mult", "0"], "").0);
        assert!(run_err(&["fuzz", "--frobnicate"], "").0);
        assert!(run_err(&["fuzz", "positional"], "").0);
        let (usage, message) = run_err(&["fuzz", "--replay", "/nonexistent-corpus-dir"], "");
        assert!(!usage, "a missing corpus directory is a failure, not a usage error");
        assert!(message.contains("/nonexistent-corpus-dir"), "{message}");
    }

    #[test]
    fn verify_accepts_fuzz_reports() {
        // A clean report: every recorded certificate re-checks.
        let report =
            run_ok(&["fuzz", "--cases", "6", "--seed", "3", "--samples", "8", "--json"], "");
        let out = run_ok(&["verify"], &report);
        assert!(out.contains("0 failure(s)"), "{out}");

        // Per-pair decision errors are acknowledged, not fatal.
        let with_error = "{\"command\":\"fuzz\",\"pairs\":[{\"index\":0,\
             \"error\":{\"message\":\"out of fragment\",\"code\":\"D002\"}}],\
             \"disagreements\":[]}";
        let out = run_ok(&["verify"], with_error);
        assert!(out.contains("recorded decide error (D002)"), "{out}");
        assert!(out.contains("1 recorded error line(s), 0 failure(s)"), "{out}");
    }

    #[test]
    fn verify_rechecks_fuzz_disagreement_witnesses() {
        // An injected verdict flip leaves shrunk witnesses in the report;
        // verify must replay them through the independent evaluator. The
        // corrupted pair entries themselves must FAIL verification — the
        // report records the lie the injection told.
        let (result, report) = run_captured(
            &[
                "fuzz",
                "--cases",
                "8",
                "--seed",
                "7",
                "--samples",
                "8",
                "--json",
                "--inject",
                "flip-verdict",
            ],
            "",
        );
        assert!(matches!(result, Err(CliError::Failure(_))));
        let (vresult, out) = run_captured(&["verify"], &report);
        assert!(matches!(vresult, Err(CliError::Failure(_))), "{out}");
        assert!(out.contains("VERIFICATION FAILED"), "{out}");
        assert!(out.contains("disagreement"), "{out}");
        if out.contains("minimized witness verified") {
            assert!(out.contains("contained-refuted-by-database"), "{out}");
        }
    }
}
