//! Counterexample extraction, end to end, on the paper's running example —
//! and a comparison with the naive random-bag search.
//!
//! The paper's Sections 3–4 walk one bag-containment instance all the way
//! down to a Diophantine inequality and back to a concrete violating bag.
//! This example reproduces every intermediate artifact:
//!
//! 1. the compiled monomial and polynomial (Definitions 3.2/3.3),
//! 2. the strict homogeneous linear system (Theorem 4.1),
//! 3. an explicit Diophantine solution and the induced bag,
//! 4. verification of the bag with the independent Equation-2 evaluator,
//! 5. how long a random-bag refuter takes to stumble on a witness.
//!
//! Run with `cargo run --example counterexample_hunt`.

use diophantus::containment::CompiledProbe;
use diophantus::cq::paper_examples;
use diophantus::workloads::{refute_by_random_bags, RefutationConfig};
use diophantus::{bag_answer_multiplicity, is_bag_contained, FeasibilityEngine, Term};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's running example (Section 3):
    //   q1(x1,x2) ← R²(x1,x2), R(c1,x2), R³(x1,c2)      (projection-free containee)
    //   q2(x1,x2) ← R³(x1,x2), R²(x1,y1), R²(y2,y1)     (containing query)
    let q1 = paper_examples::section3_query_q1();
    let q2 = paper_examples::section3_query_q2();
    println!("containee : {q1}");
    println!("containing: {q2}\n");

    // Step 1: compile the MPI for the most-general probe tuple (x̂1, x̂2).
    let probe = vec![Term::canon("x1"), Term::canon("x2")];
    let compiled = CompiledProbe::compile(&q1, &q2, &probe).expect("probe unifies with the head");
    let names = compiled.unknown_names();
    println!("unknowns (one per atom of the canonical instance):");
    for (i, name) in names.iter().enumerate() {
        println!("  u{i} = {name}");
    }
    println!("\ncompiled MPI (Definition 3.2/3.3):");
    println!("  {}", compiled.mpi().display_with(&names));

    // Step 2: the associated strict homogeneous linear system (Theorem 4.1).
    let system = compiled.mpi().to_strict_system();
    println!("\nlinear system {{(e - e_h)·ε > 0}}:");
    for row in system.rows() {
        let rendered: Vec<String> =
            row.to_dense_vec().iter().map(std::string::ToString::to_string).collect();
        println!("  ({}) · ε > 0", rendered.join(", "));
    }

    // Step 3: a Diophantine solution of the MPI and the induced bag.
    let solution = compiled
        .mpi()
        .diophantine_solution(FeasibilityEngine::Simplex)
        .expect("the LP stays within its iteration budget")
        .expect("the paper shows this MPI is solvable");
    println!("\nDiophantine solution of the MPI (a violating multiplicity assignment):");
    for (name, value) in names.iter().zip(&solution) {
        println!("  {name} = {value}");
    }
    let bag = compiled.assignment_to_bag(&solution);

    // Step 4: verify with the independent bag-semantics evaluator.
    let lhs = bag_answer_multiplicity(&q1, &bag, &probe);
    let rhs = bag_answer_multiplicity(&q2, &bag, &probe);
    println!("\nverification on the bag {bag}:");
    println!("  containee  multiplicity of (^x1, ^x2): {lhs}");
    println!("  containing multiplicity of (^x1, ^x2): {rhs}");
    assert!(lhs > rhs, "the extracted bag must violate containment");

    // The full decider produces the same verdict and a verified certificate.
    let result = is_bag_contained(&q1, &q2).unwrap();
    let certificate = result.counterexample().expect("not contained");
    assert!(certificate.verify(&q1, &q2));
    println!("\ndecider verdict: {result}");

    // The paper's own solution (u1, u2, u3) = (1, 4, 3) — where u1, u2, u3 are
    // the multiplicities of R(x̂1,x̂2), R(c1,x̂2) and R(x̂1,c2) respectively —
    // also violates containment: 98 < 108.
    let paper_assignment: Vec<diophantus::Natural> = compiled
        .atoms()
        .map(|atom| {
            let value: u64 = match atom.to_string().as_str() {
                "R(^x1, ^x2)" => 1,
                "R('c1', ^x2)" => 4,
                "R(^x1, 'c2')" => 3,
                other => panic!("unexpected unknown {other}"),
            };
            value.into()
        })
        .collect();
    let paper_bag = compiled.assignment_to_bag(&paper_assignment);
    let paper_lhs = bag_answer_multiplicity(&q1, &paper_bag, &probe);
    let paper_rhs = bag_answer_multiplicity(&q2, &paper_bag, &probe);
    println!("\nthe paper's hand-computed witness (u = (1, 4, 3)):");
    println!("  containee {paper_lhs} vs containing {paper_rhs} (the paper computes 108 vs 98)");
    assert_eq!(paper_lhs.to_string(), "108");
    assert_eq!(paper_rhs.to_string(), "98");

    // Step 5: how does naive random search fare on the same instance?
    let mut rng = StdRng::seed_from_u64(7);
    let config = RefutationConfig { attempts: 20_000, max_multiplicity: 10 };
    let found = refute_by_random_bags(&q1, &q2, config, &mut rng);
    match found {
        Some(ce) => println!(
            "\nrandom-bag refuter also found a witness (multiplicities ≤ {}): {}",
            config.max_multiplicity, ce.bag
        ),
        None => println!(
            "\nrandom-bag refuter found nothing in {} attempts — the complete procedure is needed",
            config.attempts
        ),
    }
}
