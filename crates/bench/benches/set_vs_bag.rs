//! E9 — set containment (Chandra–Merlin, NP) vs bag containment (this paper,
//! Π₂ᵖ), on the same instances.
//!
//! Bag containment implies set containment (Section 2 of the paper), so the
//! set decider is both a baseline and a cheap necessary-condition filter. The
//! bench measures the price of the finer bag semantics: the extra work of
//! compiling the MPI and running the LP on top of the containment-mapping
//! search the set decider already does.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::contained_instance;
use dioph_containment::{is_bag_contained, set_containment};
use dioph_cq::paper_examples;

fn bench_contained_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9/contained_family");
    for atoms in [2usize, 4, 6, 8] {
        let (containee, containing) = contained_instance(atoms, 23 + atoms as u64);
        // Bag containment implies set containment: assert the implication on
        // the benchmark instances themselves.
        let bag = is_bag_contained(&containee, &containing).unwrap().holds();
        let set = set_containment(&containee, &containing).holds();
        assert!(!bag || set, "bag containment must imply set containment");
        println!("E9: {atoms} atoms → set: {set}, bag: {bag}");
        group.bench_with_input(
            BenchmarkId::new("set", atoms),
            &(containee.clone(), containing.clone()),
            |b, (containee, containing)| {
                b.iter(|| set_containment(black_box(containee), black_box(containing)).holds());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bag", atoms),
            &(containee, containing),
            |b, (containee, containing)| {
                b.iter(|| {
                    is_bag_contained(black_box(containee), black_box(containing)).unwrap().holds()
                });
            },
        );
    }
    group.finish();
}

fn bench_paper_pairs(c: &mut Criterion) {
    // The Section 2 pair is the canonical case where the two semantics
    // disagree: set-equivalent, not bag-equivalent.
    let q1 = paper_examples::section2_query_q1();
    let q2 = paper_examples::section2_query_q2();
    let mut group = c.benchmark_group("E9/paper_pair");
    group.bench_function("set_q2_in_q1", |b| {
        b.iter(|| set_containment(black_box(&q2), black_box(&q1)).holds());
    });
    group.bench_function("bag_q2_in_q1", |b| {
        b.iter(|| is_bag_contained(black_box(&q2), black_box(&q1)).unwrap().holds());
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_contained_family, bench_paper_pairs
}
criterion_main!(benches);
