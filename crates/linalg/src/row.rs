//! Shared row storage for the LP engines: dense and sparse coefficient rows
//! behind one abstraction.
//!
//! The strict homogeneous systems of Theorem 4.1 are mostly zeros: a row
//! `e − e_i` touches only the unknowns appearing in two monomials, and the
//! phase-1 simplex tableau built from it adds one surplus and at most one
//! artificial coefficient to each row — a handful of non-zeros in a tableau
//! whose width grows with the row count. [`SparseRow`] stores exactly the
//! non-zero entries (sorted by column); [`Row`] lets the pivot/eliminate/
//! combine routines run unchanged over dense and sparse rows, with
//! zero-skipping coming from the representation instead of per-loop checks.
//!
//! A sparse row that fills in past half its width during elimination is
//! densified on the spot, so the worst case degrades to the dense algorithm
//! instead of to a slower sparse one.

use core::fmt;

use dioph_arith::Rational;

/// A sparse coefficient row: strictly increasing column indices, no stored
/// zeros.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SparseRow {
    dim: usize,
    entries: Vec<(usize, Rational)>,
}

impl SparseRow {
    /// Builds a sparse row over `dim` columns from (column, value) entries.
    ///
    /// # Panics
    /// Panics if the entries are not strictly increasing by column, mention a
    /// column `>= dim`, or contain an explicit zero.
    pub fn new(dim: usize, entries: Vec<(usize, Rational)>) -> Self {
        let mut prev: Option<usize> = None;
        for (col, value) in &entries {
            assert!(*col < dim, "sparse entry column {col} out of bounds for dimension {dim}");
            assert!(prev.is_none_or(|p| p < *col), "sparse entries must be strictly increasing");
            assert!(!value.is_zero(), "sparse rows must not store zeros");
            prev = Some(*col);
        }
        SparseRow { dim, entries }
    }

    /// Number of columns.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored entries, sorted by column.
    pub fn entries(&self) -> &[(usize, Rational)] {
        &self.entries
    }

    fn get(&self, col: usize) -> Option<&Rational> {
        self.entries.binary_search_by_key(&col, |(c, _)| *c).ok().map(|idx| &self.entries[idx].1)
    }

    fn take(&mut self, col: usize) -> Rational {
        match self.entries.binary_search_by_key(&col, |(c, _)| *c) {
            Ok(idx) => self.entries.remove(idx).1,
            Err(_) => Rational::zero(),
        }
    }

    fn to_dense(&self) -> Vec<Rational> {
        let mut out = vec![Rational::zero(); self.dim];
        for (col, value) in &self.entries {
            out[*col] = value.clone();
        }
        out
    }
}

/// A coefficient row in either representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Row {
    /// Every coefficient stored, zeros included.
    Dense(Vec<Rational>),
    /// Only the non-zero coefficients stored.
    Sparse(SparseRow),
}

/// A sparse row is only worth its bookkeeping while it stays under half
/// full; past that the row is densified.
const DENSIFY_NUMERATOR: usize = 1;
const DENSIFY_DENOMINATOR: usize = 2;

impl Row {
    /// Builds a dense row.
    pub fn dense(coeffs: Vec<Rational>) -> Self {
        Row::Dense(coeffs)
    }

    /// Builds a sparse row (see [`SparseRow::new`] for the invariants).
    pub fn sparse(dim: usize, entries: Vec<(usize, Rational)>) -> Self {
        Row::Sparse(SparseRow::new(dim, entries))
    }

    /// Picks a representation for the given entries: sparse while the row is
    /// at most half non-zero, dense otherwise.
    pub fn auto(dim: usize, entries: Vec<(usize, Rational)>) -> Self {
        if entries.len() * DENSIFY_DENOMINATOR <= dim * DENSIFY_NUMERATOR {
            Row::sparse(dim, entries)
        } else {
            let mut out = vec![Rational::zero(); dim];
            for (col, value) in entries {
                out[col] = value;
            }
            Row::Dense(out)
        }
    }

    /// Builds a row from a dense slice, choosing the representation by the
    /// slice's density.
    pub fn from_dense_auto(coeffs: &[Rational]) -> Self {
        let entries: Vec<(usize, Rational)> = coeffs
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_zero())
            .map(|(i, v)| (i, v.clone()))
            .collect();
        Row::auto(coeffs.len(), entries)
    }

    /// Number of columns.
    pub fn dim(&self) -> usize {
        match self {
            Row::Dense(v) => v.len(),
            Row::Sparse(s) => s.dim,
        }
    }

    /// Number of non-zero coefficients.
    pub fn nnz(&self) -> usize {
        match self {
            Row::Dense(v) => v.iter().filter(|x| !x.is_zero()).count(),
            Row::Sparse(s) => s.nnz(),
        }
    }

    /// The coefficient at `col`; `None` means zero.
    pub fn get(&self, col: usize) -> Option<&Rational> {
        match self {
            Row::Dense(v) => {
                let value = &v[col];
                if value.is_zero() {
                    None
                } else {
                    Some(value)
                }
            }
            Row::Sparse(s) => s.get(col),
        }
    }

    /// Removes and returns the coefficient at `col` (zero if absent).
    pub fn take(&mut self, col: usize) -> Rational {
        match self {
            Row::Dense(v) => core::mem::take(&mut v[col]),
            Row::Sparse(s) => s.take(col),
        }
    }

    /// Iterates the non-zero coefficients in increasing column order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, &Rational)> + '_ {
        // Both arms produce strictly increasing columns, which the sparse
        // merge in `eliminate` relies on.
        match self {
            Row::Dense(v) => RowIter::Dense(v.iter().enumerate()),
            Row::Sparse(s) => RowIter::Sparse(s.entries.iter()),
        }
    }

    /// `true` iff every coefficient is zero.
    pub fn is_zero_row(&self) -> bool {
        self.iter_nonzero().next().is_none()
    }

    /// Divides every non-zero coefficient by `divisor` in place (the
    /// normalisation half of a pivot).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn scale_div(&mut self, divisor: &Rational) {
        match self {
            Row::Dense(v) => {
                for value in v.iter_mut() {
                    if !value.is_zero() {
                        *value = &*value / divisor;
                    }
                }
            }
            Row::Sparse(s) => {
                for (_, value) in s.entries.iter_mut() {
                    *value = &*value / divisor;
                }
            }
        }
    }

    /// The shared elimination routine: `self -= factor * src`, skipping the
    /// column `skip` (the pivot column, whose new value the caller already
    /// knows to be zero). A sparse row that fills in past the densify
    /// threshold is converted to dense here.
    pub fn eliminate(&mut self, factor: &Rational, src: &Row, skip: usize) {
        match self {
            Row::Dense(v) => {
                for (col, coeff) in src.iter_nonzero() {
                    if col == skip {
                        continue;
                    }
                    let delta = factor * coeff;
                    v[col] -= &delta;
                }
            }
            Row::Sparse(s) => {
                s.entries = merge_eliminate(&s.entries, factor, src, skip);
                if s.entries.len() * DENSIFY_DENOMINATOR > s.dim * DENSIFY_NUMERATOR {
                    *self = Row::Dense(s.to_dense());
                }
            }
        }
    }

    /// The shared combination routine: `a_coeff * a + b_coeff * b` as a new
    /// row (the Fourier–Motzkin pair step). Exact zeros produced by
    /// cancellation are dropped.
    ///
    /// # Panics
    /// Panics if the rows have different dimensions.
    pub fn linear_combination(a_coeff: &Rational, a: &Row, b_coeff: &Rational, b: &Row) -> Row {
        assert_eq!(a.dim(), b.dim(), "row dimension mismatch in linear combination");
        let mut entries: Vec<(usize, Rational)> = Vec::with_capacity(a.nnz() + b.nnz());
        let mut ia = a.iter_nonzero().peekable();
        let mut ib = b.iter_nonzero().peekable();
        loop {
            let value = match (ia.peek(), ib.peek()) {
                (None, None) => break,
                (Some(&(ca, va)), Some(&(cb, vb))) if ca == cb => {
                    let v = &(a_coeff * va) + &(b_coeff * vb);
                    ia.next();
                    ib.next();
                    (ca, v)
                }
                (Some(&(ca, va)), Some(&(cb, _))) if ca < cb => {
                    ia.next();
                    (ca, a_coeff * va)
                }
                (Some(_), Some(&(cb, vb))) => {
                    ib.next();
                    (cb, b_coeff * vb)
                }
                (Some(&(ca, va)), None) => {
                    ia.next();
                    (ca, a_coeff * va)
                }
                (None, Some(&(cb, vb))) => {
                    ib.next();
                    (cb, b_coeff * vb)
                }
            };
            if !value.1.is_zero() {
                entries.push(value);
            }
        }
        Row::auto(a.dim(), entries)
    }

    /// Dot product with a dense point, skipping the column `skip` (pass
    /// `usize::MAX` — or any column `>= dim` — to skip nothing). This is the
    /// back-substitution kernel of Fourier–Motzkin.
    pub fn dot_skip(&self, point: &[Rational], skip: usize) -> Rational {
        debug_assert_eq!(point.len(), self.dim(), "dot product dimension mismatch");
        let mut acc = Rational::zero();
        for (col, coeff) in self.iter_nonzero() {
            if col == skip || point[col].is_zero() {
                continue;
            }
            acc += &(coeff * &point[col]);
        }
        acc
    }

    /// Negates every coefficient in place, reusing allocations.
    pub fn negate(&mut self) {
        match self {
            Row::Dense(v) => {
                for value in v.iter_mut() {
                    let taken = core::mem::take(value);
                    *value = -taken;
                }
            }
            Row::Sparse(s) => {
                for (_, value) in s.entries.iter_mut() {
                    let taken = core::mem::take(value);
                    *value = -taken;
                }
            }
        }
    }

    /// A dense copy of the coefficients (used by displays and tests).
    pub fn to_dense_vec(&self) -> Vec<Rational> {
        match self {
            Row::Dense(v) => v.clone(),
            Row::Sparse(s) => s.to_dense(),
        }
    }
}

/// Iterator over the non-zero entries of either representation.
enum RowIter<'a> {
    Dense(core::iter::Enumerate<core::slice::Iter<'a, Rational>>),
    Sparse(core::slice::Iter<'a, (usize, Rational)>),
}

impl<'a> Iterator for RowIter<'a> {
    type Item = (usize, &'a Rational);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RowIter::Dense(it) => it.by_ref().find(|(_, v)| !v.is_zero()),
            RowIter::Sparse(it) => it.next().map(|(i, v)| (*i, v)),
        }
    }
}

/// Merges `target - factor * src` over sorted entry streams, skipping the
/// `skip` column of `src` and dropping exact zeros.
fn merge_eliminate(
    target: &[(usize, Rational)],
    factor: &Rational,
    src: &Row,
    skip: usize,
) -> Vec<(usize, Rational)> {
    let mut out: Vec<(usize, Rational)> = Vec::with_capacity(target.len() + src.nnz());
    let mut it = target.iter().peekable();
    let mut is = src.iter_nonzero().filter(|&(col, _)| col != skip).peekable();
    loop {
        match (it.peek(), is.peek()) {
            (None, None) => break,
            (Some(&&(ct, ref vt)), Some(&(cs, vs))) if ct == cs => {
                let delta = factor * vs;
                let value = vt - &delta;
                if !value.is_zero() {
                    out.push((ct, value));
                }
                it.next();
                is.next();
            }
            (Some(&&(ct, ref vt)), Some(&(cs, _))) if ct < cs => {
                out.push((ct, vt.clone()));
                it.next();
            }
            (Some(_), Some(&(cs, vs))) => {
                let delta = factor * vs;
                out.push((cs, -delta));
                is.next();
            }
            (Some(&&(ct, ref vt)), None) => {
                out.push((ct, vt.clone()));
                it.next();
            }
            (None, Some(&(cs, vs))) => {
                let delta = factor * vs;
                out.push((cs, -delta));
                is.next();
            }
        }
    }
    out
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (col, value) in self.iter_nonzero() {
            if first {
                write!(f, "{value}*x{col}")?;
                first = false;
            } else if value.is_negative() {
                write!(f, " - {}*x{col}", -value)?;
            } else {
                write!(f, " + {value}*x{col}")?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn dense(vals: &[i64]) -> Row {
        Row::Dense(vals.iter().map(|&v| Rational::from(v)).collect())
    }

    fn sparse(dim: usize, entries: &[(usize, i64)]) -> Row {
        Row::sparse(dim, entries.iter().map(|&(c, v)| (c, Rational::from(v))).collect())
    }

    #[test]
    fn representations_agree_on_accessors() {
        let d = dense(&[0, 3, 0, -2, 0, 0, 0, 0]);
        let s = sparse(8, &[(1, 3), (3, -2)]);
        assert_eq!(d.dim(), s.dim());
        assert_eq!(d.nnz(), 2);
        assert_eq!(s.nnz(), 2);
        for col in 0..8 {
            assert_eq!(d.get(col), s.get(col), "column {col}");
        }
        let dv: Vec<_> = d.iter_nonzero().map(|(c, v)| (c, v.clone())).collect();
        let sv: Vec<_> = s.iter_nonzero().map(|(c, v)| (c, v.clone())).collect();
        assert_eq!(dv, sv);
        assert_eq!(d.to_dense_vec(), s.to_dense_vec());
    }

    #[test]
    fn auto_picks_by_density() {
        assert!(matches!(Row::auto(8, vec![(1, r(1))]), Row::Sparse(_)));
        let dense_entries: Vec<(usize, Rational)> = (0..6).map(|i| (i, r(1))).collect();
        assert!(matches!(Row::auto(8, dense_entries), Row::Dense(_)));
        assert!(matches!(Row::from_dense_auto(&[r(0), r(1), r(0), r(0)]), Row::Sparse(_)));
    }

    #[test]
    fn take_zeroes_the_column() {
        for mut row in [dense(&[0, 5, 0, 7]), sparse(4, &[(1, 5), (3, 7)])] {
            assert_eq!(row.take(1), r(5));
            assert_eq!(row.get(1), None);
            assert_eq!(row.take(0), r(0));
            assert_eq!(row.get(3), Some(&r(7)));
        }
    }

    #[test]
    fn scale_div_normalises() {
        for mut row in [dense(&[0, 4, 0, -6]), sparse(4, &[(1, 4), (3, -6)])] {
            row.scale_div(&r(2));
            assert_eq!(row.get(1), Some(&r(2)));
            assert_eq!(row.get(3), Some(&r(-3)));
        }
    }

    #[test]
    fn eliminate_matches_dense_reference() {
        // target -= 2 * src with skip = 0.
        let target_vals = [3i64, 0, 5, -1, 0, 2, 0, 0];
        let src_vals = [7i64, 1, 0, -1, 4, 2, 0, 0];
        let factor = r(2);
        let mut expect: Vec<Rational> = target_vals.iter().map(|&v| r(v)).collect();
        for (i, &s) in src_vals.iter().enumerate() {
            if i != 0 {
                expect[i] -= &(&factor * &r(s));
            }
        }
        for mut target in [
            dense(&target_vals),
            Row::from_dense_auto(&target_vals.iter().map(|&v| r(v)).collect::<Vec<_>>()),
            Row::sparse(
                8,
                target_vals
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, &v)| (i, r(v)))
                    .collect(),
            ),
        ] {
            for src in [
                dense(&src_vals),
                Row::sparse(
                    8,
                    src_vals
                        .iter()
                        .enumerate()
                        .filter(|(_, &v)| v != 0)
                        .map(|(i, &v)| (i, r(v)))
                        .collect(),
                ),
            ] {
                let mut t = target.clone();
                t.eliminate(&factor, &src, 0);
                assert_eq!(t.to_dense_vec(), expect);
            }
            // Also exercise in-place repeated elimination.
            target.eliminate(&r(0), &dense(&src_vals), 0);
        }
    }

    #[test]
    fn eliminate_densifies_on_fill_in() {
        let mut target = sparse(8, &[(0, 1)]);
        let src = dense(&[0, 1, 1, 1, 1, 1, 1, 1]);
        target.eliminate(&r(1), &src, usize::MAX);
        assert!(matches!(target, Row::Dense(_)), "fill-in past half must densify");
        assert_eq!(target.to_dense_vec(), dense(&[1, -1, -1, -1, -1, -1, -1, -1]).to_dense_vec());
    }

    #[test]
    fn linear_combination_cancels_exactly() {
        // 3 * (1, -2) + 2 * (-1, 3): column 0 cancels 3*1 + 2*(-1) = 1 ... no.
        // Use u*lo + (-l)*up with lo = (-2, 1), up = (3, 5) on column 0:
        // 3*(-2) + 2*3 = 0 — the eliminated column must vanish from storage.
        let lo = sparse(2, &[(0, -2), (1, 1)]);
        let up = sparse(2, &[(0, 3), (1, 5)]);
        let combined = Row::linear_combination(&r(3), &lo, &r(2), &up);
        assert_eq!(combined.get(0), None);
        assert!(combined.iter_nonzero().all(|(c, _)| c != 0));
        assert_eq!(combined.get(1), Some(&r(13)));
        // Dense/sparse mixes agree.
        let combined_mixed = Row::linear_combination(&r(3), &dense(&[-2, 1]), &r(2), &up);
        assert_eq!(combined.to_dense_vec(), combined_mixed.to_dense_vec());
    }

    #[test]
    fn dot_skip_and_negate() {
        let point = vec![r(1), r(2), r(3)];
        for mut row in [dense(&[2, 0, -1]), sparse(3, &[(0, 2), (2, -1)])] {
            assert_eq!(row.dot_skip(&point, usize::MAX), r(-1));
            assert_eq!(row.dot_skip(&point, 2), r(2));
            row.negate();
            assert_eq!(row.dot_skip(&point, usize::MAX), r(1));
        }
    }

    #[test]
    fn display_reads_like_a_constraint_lhs() {
        assert_eq!(sparse(4, &[(0, 2), (2, -3)]).to_string(), "2*x0 - 3*x2");
        assert_eq!(sparse(4, &[]).to_string(), "0");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_sparse_entries_are_rejected() {
        let _ = Row::sparse(4, vec![(2, r(1)), (1, r(1))]);
    }

    #[test]
    #[should_panic(expected = "must not store zeros")]
    fn explicit_zero_entries_are_rejected() {
        let _ = Row::sparse(4, vec![(1, r(0))]);
    }
}
