//! Structured errors for the LP engines.
//!
//! The phase-1 simplex engines are guaranteed to terminate (Bland's rule
//! excludes cycling), but they still run under a generous iteration budget as
//! a defence against an undetected bug turning into an infinite loop inside a
//! worker thread. Exhausting the budget used to `assert!` — which panicked
//! the engine-pool worker that happened to hold the pair and poisoned the
//! whole batch. It is now a value: [`LinalgError::IterationBudget`]
//! propagates through `Mpi::diophantine_solution` into
//! `ContainmentError`, where the batch front-end reports it as a per-pair
//! `decide` failure and `--keep-going` streams keep going.

use core::fmt;

/// A structured failure of an LP engine run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinalgError {
    /// The simplex exceeded its iteration budget. With Bland's rule this
    /// should be impossible; reporting it as a value (instead of panicking a
    /// worker thread) keeps pathological systems from poisoning the engine
    /// pool.
    IterationBudget {
        /// The budget that was exhausted.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::IterationBudget { iterations } => write!(
                f,
                "simplex exceeded its iteration budget of {iterations} \
                 (cycling should be impossible with Bland's rule)"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

/// The default iteration budget for a tableau with `total` columns and `m`
/// rows — generous enough that no terminating run ever hits it.
///
/// The `DIOPH_LP_BUDGET` environment variable (read once per process)
/// overrides the computed budget; it exists so regression tests can drive a
/// budget blowout through the full decide pipeline without constructing a
/// pathological system.
pub(crate) fn iteration_budget(total: usize, m: usize) -> usize {
    static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let env =
        OVERRIDE.get_or_init(|| std::env::var("DIOPH_LP_BUDGET").ok().and_then(|v| v.parse().ok()));
    if let Some(budget) = env {
        return (*budget).max(1);
    }
    50_usize.saturating_mul((total + 1) * (m + 1)).max(10_000)
}
