//! Homomorphism and containment-mapping enumeration.
//!
//! A homomorphism of a set of atoms `I₁` into a set of atoms `I₂` is a
//! substitution `h` defined on all variables of `I₁` with `h(I₁) ⊆ I₂`.
//! `Hom(q(x), I)` collects the homomorphisms of `body(q(x))` into `I`, and a
//! *containment mapping* from `q₂(x₂)` to `q₁(x₁)` is a homomorphism of
//! bodies with `h(x₂) = x₁` (Chandra–Merlin). The bag-containment pipeline
//! needs the variant `CM(q₂(x₂), q₁(t))`: homomorphisms of `body(q₂)` into
//! the canonical instance `I_{q₁(t)}` mapping the head of `q₂` to the probe
//! tuple `t`.
//!
//! Enumeration is a straightforward backtracking search over the distinct
//! body atoms, matching each against the facts of the target instance with
//! the same relation and arity. Atoms are ordered so that the most
//! constrained (fewest candidate facts) are matched first, which keeps the
//! search shallow on the instances arising from canonical databases.

use std::collections::{BTreeSet, HashMap};

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::substitution::Substitution;
use crate::term::Term;

/// Enumerates every homomorphism of `atoms` into the ground `instance`,
/// extending the partial substitution `seed`.
///
/// The returned substitutions bind every variable occurring in `atoms`
/// (plus whatever `seed` already bound).
///
/// # Panics
/// Panics if `instance` contains a non-ground atom.
pub fn homomorphisms_into(
    atoms: &[Atom],
    instance: &BTreeSet<Atom>,
    seed: &Substitution,
) -> Vec<Substitution> {
    for fact in instance {
        assert!(fact.is_ground(), "homomorphism target must be a set of ground atoms");
    }

    // Index the instance by (relation, arity) for candidate lookup.
    let mut index: HashMap<(&str, usize), Vec<&Atom>> = HashMap::new();
    for fact in instance {
        index.entry((fact.relation(), fact.arity())).or_default().push(fact);
    }

    // Memoise each atom's candidate list up front: the backtracking search
    // revisits every depth once per partial assignment, and re-hashing the
    // (relation, arity) key at each node dominated the hot loop. One lookup
    // per atom here, zero lookups inside the search.
    let mut ordered: Vec<(&Atom, &[&Atom])> = atoms
        .iter()
        .map(|a| {
            let candidates =
                index.get(&(a.relation(), a.arity())).map(Vec::as_slice).unwrap_or(&[]);
            (a, candidates)
        })
        .collect();
    // Order atoms by ascending number of candidate facts (most constrained
    // first); the sort is stable, so equal counts keep the body order.
    ordered.sort_by_key(|(_, candidates)| candidates.len());

    let mut results = Vec::new();
    let mut current = seed.clone();
    search(&ordered, 0, &mut current, &mut results);
    results
}

fn search(
    atoms: &[(&Atom, &[&Atom])],
    depth: usize,
    current: &mut Substitution,
    results: &mut Vec<Substitution>,
) {
    let Some(&(atom, candidates)) = atoms.get(depth) else {
        results.push(current.clone());
        return;
    };
    for fact in candidates {
        let mut attempt = current.clone();
        if attempt.unify_tuples(atom.terms(), fact.terms()) {
            std::mem::swap(current, &mut attempt);
            search(atoms, depth + 1, current, results);
            std::mem::swap(current, &mut attempt);
        }
    }
}

/// `Hom(q(x), I)`: all homomorphisms of `body(q)` into the ground instance
/// `instance`.
pub fn query_homomorphisms(
    query: &ConjunctiveQuery,
    instance: &BTreeSet<Atom>,
) -> Vec<Substitution> {
    let atoms: Vec<Atom> = query.body_atoms().cloned().collect();
    homomorphisms_into(&atoms, instance, &Substitution::identity())
}

/// `Hom_{h(x)=t}(q(x), I)`: homomorphisms of `body(q)` into `instance` whose
/// restriction to the head maps it (componentwise) onto the ground tuple `t`.
///
/// Returns an empty vector when the head is not unifiable with `t`.
pub fn query_homomorphisms_with_answer(
    query: &ConjunctiveQuery,
    instance: &BTreeSet<Atom>,
    answer: &[Term],
) -> Vec<Substitution> {
    if answer.len() != query.arity() {
        return Vec::new();
    }
    let mut seed = Substitution::identity();
    if !seed.unify_tuples(query.head(), answer) {
        return Vec::new();
    }
    let atoms: Vec<Atom> = query.body_atoms().cloned().collect();
    homomorphisms_into(&atoms, instance, &seed)
}

/// `CM(q₂(x₂), q₁(x₁))`: classical containment mappings — homomorphisms of
/// `body(q₂)` into `body(q₁)` (viewed as the canonical instance of `q₁`) that
/// map the head of `q₂` to the head of `q₁`.
///
/// The mapping is returned "de-canonicalised": its images are variables and
/// constants of `q₁`, so that `h(q₂)` is a sub-query of `q₁` as in the paper.
pub fn containment_mappings(
    containing: &ConjunctiveQuery,
    containee: &ConjunctiveQuery,
) -> Vec<Substitution> {
    if containing.arity() != containee.arity() {
        return Vec::new();
    }
    let instance = containee.canonical_instance();
    let canonical_head: Vec<Term> = containee.head().iter().map(Term::canonicalize).collect();
    let mappings = query_homomorphisms_with_answer(containing, &instance, &canonical_head);
    mappings.into_iter().map(|m| decanonicalize_substitution(&m)).collect()
}

/// `CM(q₂(x₂), q₁(t))` for a *ground* query `q₁(t)` (Definition 3.3 and the
/// abuse of notation described in Section 2): homomorphisms of `body(q₂)`
/// into the canonical instance `I_{q₁(t)}` mapping the head of `q₂` to `t`.
pub fn containment_mappings_to_grounded(
    containing: &ConjunctiveQuery,
    grounded_containee: &ConjunctiveQuery,
) -> Vec<Substitution> {
    debug_assert!(
        grounded_containee.head().iter().all(Term::is_constant),
        "containment mappings to a grounded query need a ground head"
    );
    if !grounded_containee.body_atoms().all(Atom::is_ground) {
        // Body variables survive grounding only outside the projection-free
        // fragment; take the materialising route over the canonical instance.
        let tuple: Vec<Term> = grounded_containee.head().to_vec();
        let instance = grounded_containee.canonical_instance();
        return query_homomorphisms_with_answer(containing, &instance, &tuple);
    }
    let mut out = Vec::new();
    for_each_containment_mapping_to_grounded(containing, grounded_containee, |b| {
        out.push(Substitution::from_pairs(b.bindings().map(|(v, t)| (v.to_string(), t.clone()))));
    });
    out
}

/// The variable bindings of one containment mapping found by
/// [`for_each_containment_mapping_to_grounded`]: every variable of the
/// containing query paired with its image in the target instance, borrowed —
/// nothing is cloned or materialised.
#[derive(Debug)]
pub struct MappingBindings<'a> {
    /// Distinct variables in first-occurrence order (head first, then body).
    vars: Vec<&'a str>,
    /// Image of each variable; all `Some` when a visitor observes the value.
    images: Vec<Option<&'a Term>>,
}

impl<'a> MappingBindings<'a> {
    /// The image `h(var)`, if bound.
    pub fn image_of(&self, var: &str) -> Option<&'a Term> {
        self.vars.iter().position(|v| *v == var).and_then(|i| self.images[i])
    }

    /// The bound variables and their images.
    pub fn bindings(&self) -> impl Iterator<Item = (&'a str, &'a Term)> + '_ {
        self.vars.iter().zip(&self.images).filter_map(|(v, i)| i.map(|t| (*v, t)))
    }

    fn slot(&mut self, var: &'a str) -> usize {
        if let Some(i) = self.vars.iter().position(|v| *v == var) {
            i
        } else {
            self.vars.push(var);
            self.images.push(None);
            self.vars.len() - 1
        }
    }
}

/// A pre-resolved pattern term: a binding slot for a variable, or a ground
/// term matched by equality — so the search never touches variable names.
enum Pat<'a> {
    Slot(usize),
    Ground(&'a Term),
}

/// Visitor form of [`containment_mappings_to_grounded`] for the compilation
/// hot path: enumerates `CM(q₂(x₂), q₁(t))` without materialising
/// substitutions, cloning terms or building the canonical instance. The
/// backtracking search binds borrowed term images in a slot table and
/// unwinds them through a trail, so a whole enumeration performs only the
/// handful of set-up allocations — independent of how many mappings exist.
///
/// Mappings are visited in the same order [`containment_mappings_to_grounded`]
/// returns them.
///
/// # Panics
/// Panics if the grounded containee's body contains a variable (its head is
/// only debug-asserted ground, matching the materialising route).
pub fn for_each_containment_mapping_to_grounded<'a>(
    containing: &'a ConjunctiveQuery,
    grounded_containee: &'a ConjunctiveQuery,
    mut visit: impl FnMut(&MappingBindings<'a>),
) {
    if containing.arity() != grounded_containee.arity() {
        return;
    }
    let tuple = grounded_containee.head();
    debug_assert!(
        tuple.iter().all(Term::is_constant),
        "containment mappings to a grounded query need a ground head"
    );

    // Seed: the head of the containing query must map componentwise onto the
    // probe tuple (constants by equality, variables by consistent binding).
    let mut bindings = MappingBindings { vars: Vec::new(), images: Vec::new() };
    for (pattern, target) in containing.head().iter().zip(tuple) {
        match pattern {
            Term::Var(v) => {
                let i = bindings.slot(v);
                match bindings.images[i] {
                    Some(existing) if existing != target => return,
                    _ => bindings.images[i] = Some(target),
                }
            }
            other if other != target => return,
            _ => {}
        }
    }

    // The facts are the distinct body atoms of the grounded containee (its
    // canonical instance is itself, since grounding left no variables).
    let facts: Vec<&Atom> = grounded_containee.body_atoms().collect();
    assert!(
        facts.iter().all(|f| f.is_ground()),
        "containment mappings into a grounded query need a ground body"
    );

    // Pre-resolve each distinct containing atom to slot/ground patterns and
    // its candidate facts, then order most-constrained-first (stable, so
    // equal candidate counts keep the deterministic body order).
    let mut ordered: Vec<(Vec<Pat<'a>>, Vec<&'a Atom>)> = containing
        .body_atoms()
        .map(|atom| {
            let pats = atom
                .terms()
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Pat::Slot(bindings.slot(v)),
                    ground => Pat::Ground(ground),
                })
                .collect();
            let candidates = facts.iter().copied().filter(|f| f.same_schema(atom)).collect();
            (pats, candidates)
        })
        .collect();
    ordered.sort_by_key(|(_, candidates)| candidates.len());

    let mut trail: Vec<usize> = Vec::new();
    search_bindings(&ordered, 0, &mut bindings, &mut trail, &mut visit);
}

fn search_bindings<'a>(
    atoms: &[(Vec<Pat<'a>>, Vec<&'a Atom>)],
    depth: usize,
    bindings: &mut MappingBindings<'a>,
    trail: &mut Vec<usize>,
    visit: &mut impl FnMut(&MappingBindings<'a>),
) {
    let Some((pats, candidates)) = atoms.get(depth) else {
        visit(bindings);
        return;
    };
    for fact in candidates {
        let mark = trail.len();
        let mut ok = true;
        for (pat, target) in pats.iter().zip(fact.terms()) {
            match pat {
                Pat::Slot(i) => match bindings.images[*i] {
                    Some(existing) => {
                        if existing != target {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        bindings.images[*i] = Some(target);
                        trail.push(*i);
                    }
                },
                Pat::Ground(g) => {
                    if *g != target {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            search_bindings(atoms, depth + 1, bindings, trail, visit);
        }
        while trail.len() > mark {
            let i = trail.pop().expect("trail entries past the mark were just pushed");
            bindings.images[i] = None;
        }
    }
}

/// Replaces canonical constants by their variables in every image of the
/// substitution.
fn decanonicalize_substitution(sigma: &Substitution) -> Substitution {
    Substitution::from_pairs(sigma.bindings().map(|(v, t)| (v.to_string(), t.decanonicalize())))
}

/// Decides classical **set containment** `q1 ⊑s q2` via the Chandra–Merlin
/// criterion: `q1 ⊑s q2` iff there is a containment mapping from `q2` to `q1`.
pub fn is_set_contained(containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> bool {
    !containment_mappings(containing, containee).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn homomorphisms_into_small_instance() {
        // body: R(x, y), R(y, z); instance: R(a,b), R(b,c), R(b,b).
        let atoms =
            vec![Atom::new("R", vec![v("x"), v("y")]), Atom::new("R", vec![v("y"), v("z")])];
        let instance: BTreeSet<Atom> = [
            Atom::new("R", vec![c("a"), c("b")]),
            Atom::new("R", vec![c("b"), c("c")]),
            Atom::new("R", vec![c("b"), c("b")]),
        ]
        .into_iter()
        .collect();
        let homs = homomorphisms_into(&atoms, &instance, &Substitution::identity());
        // Paths of length 2: a->b->c, a->b->b, b->b->c, b->b->b.
        assert_eq!(homs.len(), 4);
        for h in &homs {
            for a in &atoms {
                assert!(instance.contains(&h.apply_atom(a)));
            }
        }
    }

    #[test]
    fn seed_constrains_the_search() {
        let atoms = vec![Atom::new("R", vec![v("x"), v("y")])];
        let instance: BTreeSet<Atom> = [
            Atom::new("R", vec![c("a"), c("b")]),
            Atom::new("R", vec![c("a"), c("c")]),
            Atom::new("R", vec![c("d"), c("b")]),
        ]
        .into_iter()
        .collect();
        let mut seed = Substitution::identity();
        seed.bind("x", c("a")).unwrap();
        let homs = homomorphisms_into(&atoms, &instance, &seed);
        assert_eq!(homs.len(), 2);
        assert!(homs.iter().all(|h| h.get("x") == Some(&c("a"))));
    }

    #[test]
    fn no_matching_relation_means_no_homomorphism() {
        let atoms = vec![Atom::new("S", vec![v("x")])];
        let instance: BTreeSet<Atom> = [Atom::new("R", vec![c("a")])].into_iter().collect();
        assert!(homomorphisms_into(&atoms, &instance, &Substitution::identity()).is_empty());
    }

    #[test]
    #[should_panic(expected = "ground atoms")]
    fn non_ground_instance_is_rejected() {
        let instance: BTreeSet<Atom> = [Atom::new("R", vec![v("x")])].into_iter().collect();
        let _ = homomorphisms_into(&[], &instance, &Substitution::identity());
    }

    #[test]
    fn paper_section2_homomorphism_counts() {
        // Paper Section 2: q(x1,x2) over instance I has exactly the four
        // homomorphisms h1..h4 (two per answer tuple).
        let q = paper_examples::section2_query_q3();
        let instance: BTreeSet<Atom> = [
            Atom::new("R", vec![c("c1"), c("c2")]),
            Atom::new("R", vec![c("c1"), c("c3")]),
            Atom::new("P", vec![c("c2"), c("c4")]),
            Atom::new("P", vec![c("c5"), c("c4")]),
        ]
        .into_iter()
        .collect();
        let all = query_homomorphisms(&q, &instance);
        assert_eq!(all.len(), 4);
        let to_c1c2 = query_homomorphisms_with_answer(&q, &instance, &[c("c1"), c("c2")]);
        assert_eq!(to_c1c2.len(), 2);
        let to_c1c5 = query_homomorphisms_with_answer(&q, &instance, &[c("c1"), c("c5")]);
        assert_eq!(to_c1c5.len(), 2);
        // Tuples that are not answers have no homomorphisms.
        assert!(query_homomorphisms_with_answer(&q, &instance, &[c("c2"), c("c2")]).is_empty());
    }

    #[test]
    fn paper_section2_containment_mappings() {
        // q1, q2, q3 from the paper's Section 2 containment example.
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let q3 = paper_examples::section2_query_q3();

        // The identity is the unique containment mapping between q1 and q2.
        assert_eq!(containment_mappings(&q1, &q2).len(), 1);
        assert_eq!(containment_mappings(&q2, &q1).len(), 1);
        // σ = {y1,y2,y3,y4 ↦ x2} is the unique containment mapping of q3 into q1 and q2.
        let cm31 = containment_mappings(&q3, &q1);
        assert_eq!(cm31.len(), 1);
        assert_eq!(cm31[0].get("y1"), Some(&v("x2")));
        assert_eq!(cm31[0].get("y4"), Some(&v("x2")));
        assert_eq!(containment_mappings(&q3, &q2).len(), 1);
        // No containment mappings from q1 or q2 to q3.
        assert!(containment_mappings(&q1, &q3).is_empty());
        assert!(containment_mappings(&q2, &q3).is_empty());
    }

    #[test]
    fn paper_section2_set_containment_relations() {
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let q3 = paper_examples::section2_query_q3();
        // From the paper: q1 ⊑s q2, q2 ⊑s q1, q1 ⊑s q3, q2 ⊑s q3, q3 ⋢s q1, q3 ⋢s q2.
        assert!(is_set_contained(&q1, &q2));
        assert!(is_set_contained(&q2, &q1));
        assert!(is_set_contained(&q1, &q3));
        assert!(is_set_contained(&q2, &q3));
        assert!(!is_set_contained(&q3, &q1));
        assert!(!is_set_contained(&q3, &q2));
    }

    #[test]
    fn paper_section3_containment_mappings_to_grounded() {
        // Section 3: q1(x1,x2) ← R²(x1,x2), R(c1,x2), R³(x1,c2) with probe x̂1x̂2,
        // and q2(x1,x2) ← R³(x1,x2), R²(x1,y1), R²(y2,y1) has exactly three
        // containment mappings h1, h2, h3 into q1(x̂1, x̂2).
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        let grounded = q1.ground_with(&[Term::canon("x1"), Term::canon("x2")]).unwrap();
        let mappings = containment_mappings_to_grounded(&q2, &grounded);
        assert_eq!(mappings.len(), 3);
        for h in &mappings {
            assert_eq!(h.get("x1"), Some(&Term::canon("x1")));
            assert_eq!(h.get("x2"), Some(&Term::canon("x2")));
        }
        // The images of (y1, y2) across the three mappings are exactly
        // {(x̂2, x̂1), (x̂2, c1), (c2, x̂1)}.
        let mut images: Vec<(Term, Term)> = mappings
            .iter()
            .map(|h| (h.get("y1").unwrap().clone(), h.get("y2").unwrap().clone()))
            .collect();
        images.sort();
        let mut expected = vec![
            (Term::canon("x2"), Term::canon("x1")),
            (Term::canon("x2"), Term::constant("c1")),
            (Term::constant("c2"), Term::canon("x1")),
        ];
        expected.sort();
        assert_eq!(images, expected);
    }

    #[test]
    fn arity_mismatch_yields_no_containment_mappings() {
        let q1 = ConjunctiveQuery::from_atom_list(
            "q1",
            vec![v("x")],
            vec![Atom::new("R", vec![v("x"), v("x")])],
        );
        let q2 = ConjunctiveQuery::from_atom_list(
            "q2",
            vec![v("x"), v("y")],
            vec![Atom::new("R", vec![v("x"), v("y")])],
        );
        assert!(containment_mappings(&q2, &q1).is_empty());
        assert!(!is_set_contained(&q1, &q2));
    }
}
