//! Recycled scratch buffers for the LP kernels — the linalg layer of the
//! workspace's scratch-memory discipline.
//!
//! Both phase-1 kernels ([`crate::simplex`] and [`crate::bareiss`]) used to
//! allocate their whole working set per call: the standard-form construction
//! vectors (entry staging, rhs, basis, artificial flags), one `in_basis`
//! bitmap plus one `reduced`-cost vector **per pivot**, and a fresh merge
//! output for every sparse elimination. On the per-probe hot loop of the
//! containment decider those calls happen thousands of times per pair with
//! near-identical shapes, so all of that capacity is recyclable.
//!
//! [`KernelScratch`] owns those buffers for one coefficient type and
//! [`LpScratch`] bundles the rational and integer instantiations so a caller
//! can switch `--lp-route` without re-warming. [`RowPool`] recycles the
//! sparse entry vectors that back [`GenRow::Sparse`] rows — tableau rows
//! are torn back down into their entry storage at the next
//! `KernelScratch::reset` instead of being dropped.
//!
//! Reuse is **capacity-only**: every buffer is cleared before use, so a
//! kernel run through a warmed scratch performs bit-identical arithmetic
//! (same pivot sequence, same witness) to a run through a fresh one. The
//! differential proptests in `tests/scratch_differential.rs` pin that.
//!
//! Observability: a [`RowPool`] miss (a request served by a fresh heap
//! allocation) bumps `alloc.scratch.spills`, and every return to the pool
//! records the pool's high-water mark in `alloc.pool.rows.hwm`.

use dioph_arith::{Integer, Natural, Rational};

use crate::row::{sparse_is_worth_it, Coeff, GenRow, GenSparseRow};

/// A pool of sparse-row entry vectors: spent rows are torn down into their
/// `Vec<(usize, T)>` storage and handed back out, cleared, with their
/// capacity intact.
#[derive(Debug)]
pub struct RowPool<T> {
    spare: Vec<Vec<(usize, T)>>,
}

impl<T> Default for RowPool<T> {
    fn default() -> Self {
        RowPool { spare: Vec::new() }
    }
}

impl<T: Coeff> RowPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty entry vector from the pool, allocating a fresh one
    /// (and counting an `alloc.scratch.spills`) only when the pool is dry.
    pub fn take(&mut self) -> Vec<(usize, T)> {
        match self.spare.pop() {
            Some(entries) => entries,
            None => {
                dioph_obs::registry::ALLOC_SCRATCH_SPILLS.incr();
                Vec::new()
            }
        }
    }

    /// Returns an entry vector's capacity to the pool.
    pub fn put(&mut self, mut entries: Vec<(usize, T)>) {
        entries.clear();
        self.spare.push(entries);
        dioph_obs::registry::ALLOC_POOL_ROWS_HWM.record_max(self.spare.len() as u64);
    }

    /// Tears a row down, reclaiming its sparse entry storage. Dense storage
    /// is simply dropped — the systems of the paper's reduction stay sparse
    /// end to end, so dense rows are the exception, not the steady state.
    pub fn reclaim(&mut self, row: GenRow<T>) {
        if let GenRow::Sparse(sparse) = row {
            self.put(sparse.entries);
        }
    }

    /// Number of entry vectors currently held.
    pub fn held(&self) -> usize {
        self.spare.len()
    }
}

/// [`GenRow::auto`] with pooled storage: identical representation choice,
/// but when the dense side wins the (now spent) entry vector goes back to
/// the pool instead of being dropped.
pub(crate) fn auto_pooled<T: Coeff>(
    dim: usize,
    entries: Vec<(usize, T)>,
    pool: &mut RowPool<T>,
) -> GenRow<T> {
    let sparse = GenSparseRow::new(dim, entries);
    if sparse_is_worth_it(sparse.nnz(), dim) {
        GenRow::Sparse(sparse)
    } else {
        let mut out = vec![T::default(); dim]; // alloc-ok: dense rows bypass the pool
        let mut entries = sparse.entries;
        for (col, value) in entries.drain(..) {
            out[col] = value;
        }
        pool.put(entries);
        GenRow::Dense(out)
    }
}

/// The per-call working set of one phase-1 kernel, with every buffer
/// recycled across calls. `T` is the tableau coefficient type:
/// [`Rational`] for [`crate::simplex`], [`Integer`] for [`crate::bareiss`]
/// (which additionally uses the per-row denominators in `dens`).
#[derive(Debug)]
pub struct KernelScratch<T> {
    /// Standard-form construction: which rows need an artificial variable.
    pub(crate) needs_artificial: Vec<bool>,
    /// Standard-form construction: entry vectors staged between the two
    /// construction passes (drained into `rows` once the artificial count
    /// is known).
    pub(crate) staged: Vec<Vec<(usize, T)>>,
    /// The tableau rows.
    pub(crate) rows: Vec<GenRow<T>>,
    /// The right-hand sides.
    pub(crate) rhs: Vec<T>,
    /// Per-row denominators (fraction-free kernel only).
    pub(crate) dens: Vec<Natural>,
    /// The current basis, one column index per row.
    pub(crate) basis: Vec<usize>,
    /// Per-pivot bitmap of basic columns (hoisted out of the pivot loop).
    pub(crate) in_basis: Vec<bool>,
    /// Per-pivot reduced-cost vector (hoisted out of the pivot loop).
    pub(crate) reduced: Vec<Rational>,
    /// Spare output buffer for the sparse elimination merge; after each
    /// merge it holds the eliminated row's previous entries, ready for the
    /// next one.
    pub(crate) merge_buf: Vec<(usize, T)>,
    /// Recycled entry storage backing the sparse rows above.
    pub(crate) pool: RowPool<T>,
}

impl<T> Default for KernelScratch<T> {
    fn default() -> Self {
        KernelScratch {
            needs_artificial: Vec::new(),
            staged: Vec::new(),
            rows: Vec::new(),
            rhs: Vec::new(),
            dens: Vec::new(),
            basis: Vec::new(),
            in_basis: Vec::new(),
            reduced: Vec::new(),
            merge_buf: Vec::new(),
            pool: RowPool::default(),
        }
    }
}

impl<T: Coeff> KernelScratch<T> {
    /// Clears every buffer for a new kernel run, tearing the previous run's
    /// rows back down into the pool. Capacity is kept everywhere.
    pub(crate) fn reset(&mut self) {
        self.needs_artificial.clear();
        for entries in self.staged.drain(..) {
            self.pool.put(entries);
        }
        for row in self.rows.drain(..) {
            self.pool.reclaim(row);
        }
        self.rhs.clear();
        self.dens.clear();
        self.basis.clear();
        self.in_basis.clear();
        self.reduced.clear();
    }
}

/// One scratch per worker: both kernel instantiations plus the shared
/// integer row pool, so a single warmed value serves every `--lp-route`.
///
/// The integer pool ([`LpScratch::int_pool`]) is also the recycling home
/// for [`StrictHomogeneousSystem`](crate::StrictHomogeneousSystem) rows —
/// the MPI layer builds its systems from the same storage the fraction-free
/// kernel draws on.
#[derive(Debug, Default)]
pub struct LpScratch {
    pub(crate) rational: KernelScratch<Rational>,
    pub(crate) integer: KernelScratch<Integer>,
}

impl LpScratch {
    /// A cold scratch; buffers warm up over the first call and are recycled
    /// from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared integer entry pool, for callers that build
    /// [`StrictHomogeneousSystem`](crate::StrictHomogeneousSystem) rows out
    /// of recycled storage.
    pub fn int_pool(&mut self) -> &mut RowPool<Integer> {
        &mut self.integer.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::IntRow;

    #[test]
    fn pool_round_trips_sparse_entry_storage() {
        let mut pool: RowPool<Integer> = RowPool::new();
        assert_eq!(pool.held(), 0);
        let mut entries = pool.take();
        entries.push((1, Integer::from(7)));
        let capacity = entries.capacity();
        let row = IntRow::sparse(4, entries);
        pool.reclaim(row);
        assert_eq!(pool.held(), 1);
        let recycled = pool.take();
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), capacity, "capacity must survive the round trip");
        assert_eq!(pool.held(), 0);
    }

    #[test]
    fn dense_rows_are_dropped_not_pooled() {
        let mut pool: RowPool<Integer> = RowPool::new();
        pool.reclaim(IntRow::dense(vec![Integer::one(), Integer::one()]));
        assert_eq!(pool.held(), 0);
    }

    #[test]
    fn auto_pooled_matches_auto_and_recycles_the_dense_side() {
        let mut pool: RowPool<Integer> = RowPool::new();
        // Sparse-worthy entries: representation matches `auto`, storage kept.
        let sparse_entries = vec![(1, Integer::from(3))];
        let row = auto_pooled(8, sparse_entries.clone(), &mut pool);
        assert_eq!(row, IntRow::auto(8, sparse_entries));
        assert_eq!(pool.held(), 0);
        // Dense-worthy entries: representation matches `auto`, the spent
        // entry vector lands in the pool.
        let dense_entries: Vec<(usize, Integer)> =
            (0..3).map(|i| (i, Integer::from(i as i64 + 1))).collect();
        let row = auto_pooled(4, dense_entries.clone(), &mut pool);
        assert_eq!(row, IntRow::auto(4, dense_entries));
        assert_eq!(pool.held(), 1);
    }

    #[test]
    fn reset_reclaims_rows_and_staged_entries() {
        let mut scratch: KernelScratch<Integer> = KernelScratch::default();
        scratch.staged.push(vec![(0, Integer::one())]);
        scratch.rows.push(IntRow::sparse(4, vec![(2, Integer::from(5))]));
        scratch.rhs.push(Integer::one());
        scratch.basis.push(0);
        scratch.reset();
        assert!(scratch.staged.is_empty());
        assert!(scratch.rows.is_empty());
        assert!(scratch.rhs.is_empty());
        assert!(scratch.basis.is_empty());
        assert_eq!(scratch.pool.held(), 2, "both entry vectors must be recycled");
    }
}
