//! Exact rational phase-1 simplex.
//!
//! This is the scalable feasibility engine backing Theorem 4.2 of the paper
//! (polynomial-time decidability of the Diophantine-solution problem for
//! MPIs). It decides whether the polyhedron
//!
//! ```text
//!     { x ∈ ℚⁿ  :  A·x ≥ b,  x ≥ 0 }
//! ```
//!
//! is non-empty and, if so, returns a rational point inside it. All pivoting
//! is performed with exact [`Rational`] arithmetic; Bland's rule guarantees
//! termination (no cycling).
//!
//! The tableau rows live behind the [`Row`] abstraction: the strict
//! homogeneous systems of the paper's reduction produce rows that are mostly
//! zeros (plus one surplus and at most one artificial coefficient), so the
//! feasibility front-end hands in [`Row::Sparse`] rows and the pivot loop
//! skips zeros by construction. Dense callers (and dense fill-in) take the
//! [`Row::Dense`] route through the same [`Row::eliminate`] kernel.
//!
//! Strict inequalities are handled one level up (by the
//! [`StrictHomogeneousSystem`](crate::StrictHomogeneousSystem) machinery)
//! via the homogeneity of the systems produced by the paper's reduction:
//! `A·x > 0, x ≥ 0` is rationally feasible iff `A·x ≥ 1, x ≥ 0` is.

use dioph_arith::Rational;

use crate::error::{iteration_budget, LinalgError};
use crate::row::{IntRow, Row};
use crate::scratch::{auto_pooled, KernelScratch};

/// Result of a phase-1 simplex run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexOutcome {
    /// A feasible point `x ≥ 0` with `A·x ≥ b` was found.
    Feasible(Vec<Rational>),
    /// The polyhedron is empty.
    Infeasible,
}

impl SimplexOutcome {
    /// Returns the witness if feasible.
    pub fn witness(&self) -> Option<&[Rational]> {
        match self {
            SimplexOutcome::Feasible(w) => Some(w),
            SimplexOutcome::Infeasible => None,
        }
    }

    /// `true` iff a feasible point was found.
    pub fn is_feasible(&self) -> bool {
        matches!(self, SimplexOutcome::Feasible(_))
    }
}

/// Finds `x ≥ 0` with `A·x ≥ b` (row-wise), if such a point exists.
///
/// `a` is a dense row-major matrix; every row must have the same length.
/// This is the dense convenience front door; [`feasible_point_rows`] is the
/// engine and accepts sparse rows directly.
///
/// # Errors
/// [`LinalgError::IterationBudget`] if the run exceeds its iteration budget.
///
/// # Panics
/// Panics if the number of rows of `a` differs from the length of `b`, or if
/// the rows of `a` have inconsistent lengths.
pub fn feasible_point(a: &[Vec<Rational>], b: &[Rational]) -> Result<SimplexOutcome, LinalgError> {
    let n = a.first().map_or(0, std::vec::Vec::len);
    for row in a {
        assert_eq!(row.len(), n, "ragged matrix passed to simplex");
    }
    feasible_point_rows(n, a.iter().map(|row| Row::from_dense_auto(row)).collect(), b.to_vec())
}

/// Finds `x ≥ 0` with `A·x ≥ b` for rows in either representation.
///
/// # Errors
/// [`LinalgError::IterationBudget`] if the run exceeds its iteration budget
/// (a defensive bound — Bland's rule excludes cycling, so a terminating
/// implementation never reaches it; reporting it as a value keeps a worker
/// thread from panicking and poisoning the engine pool).
///
/// # Panics
/// Panics if a row's dimension differs from `n`, or if the number of rows
/// differs from the length of `b`.
pub fn feasible_point_rows(
    n: usize,
    a: Vec<Row>,
    b: Vec<Rational>,
) -> Result<SimplexOutcome, LinalgError> {
    let budget = iteration_budget(n + 2 * a.len(), a.len());
    feasible_point_rows_with_budget(n, a, b, budget)
}

/// [`feasible_point_rows`] with an explicit iteration budget (regression
/// tests drive budget blowouts through here; production callers use the
/// default budget).
///
/// # Errors
/// [`LinalgError::IterationBudget`] after `max_iterations` pivots.
///
/// # Panics
/// As [`feasible_point_rows`].
pub fn feasible_point_rows_with_budget(
    n: usize,
    a: Vec<Row>,
    b: Vec<Rational>,
    max_iterations: usize,
) -> Result<SimplexOutcome, LinalgError> {
    let mut scratch = KernelScratch::default();
    feasible_point_rows_in(n, &a, &b, max_iterations, &mut scratch)
}

/// [`feasible_point_rows_with_budget`] through a caller-provided scratch:
/// every working buffer (standard-form staging, tableau rows, per-pivot
/// reduced costs and basis bitmap, elimination merge output) is drawn from
/// `scratch` and recycled there, so a warmed scratch makes the whole run
/// allocation-free apart from the returned witness. Reuse is capacity-only:
/// pivots and outcome are bit-identical to the fresh-allocation route.
pub(crate) fn feasible_point_rows_in(
    n: usize,
    a: &[Row],
    b: &[Rational],
    max_iterations: usize,
    scratch: &mut KernelScratch<Rational>,
) -> Result<SimplexOutcome, LinalgError> {
    assert_eq!(a.len(), b.len(), "row count mismatch between A and b");
    for row in a {
        assert_eq!(row.dim(), n, "row dimension mismatch in simplex input");
    }
    if a.is_empty() {
        return Ok(SimplexOutcome::Feasible(vec![Rational::zero(); n])); // alloc-ok: returned witness
    }

    // Standard form: for every row  a_i·x - s_i = b_i  with s_i ≥ 0.
    // Rows are normalised so the right-hand side is non-negative; rows that
    // end up with rhs = 0 or that originally had b_i ≤ 0 can use the surplus
    // (or its negation, a slack) as the initial basic variable, all other
    // rows receive an artificial variable.
    //
    // Column layout: [ x (n) | s (m) | artificials (k) ].
    scratch.reset();
    for (i, (a_row, b_i)) in a.iter().zip(b).enumerate() {
        // a_i·x - s_i = b_i, stored as sorted sparse entries over the final
        // column layout (the x-part indices are already increasing, and the
        // surplus column n+i comes after all of them).
        let mut entries = scratch.pool.take();
        entries.extend(a_row.iter_nonzero().map(|(col, v)| (col, v.clone())));
        entries.push((n + i, -Rational::one()));
        let mut rhs_i = b_i.clone();
        if rhs_i.is_negative() {
            // Multiply the whole equation by -1 so the rhs is non-negative;
            // the surplus column then carries +1 and can serve as the basis.
            for (_, value) in entries.iter_mut() {
                let taken = core::mem::take(value);
                *value = -taken;
            }
            rhs_i = -rhs_i;
            scratch.needs_artificial.push(false);
        } else if rhs_i.is_zero() {
            // rhs already zero: the surplus variable (value 0) can be basic
            // only if its coefficient is +1; flip the row to make it so.
            for (_, value) in entries.iter_mut() {
                let taken = core::mem::take(value);
                *value = -taken;
            }
            scratch.needs_artificial.push(false);
        } else {
            scratch.needs_artificial.push(true);
        }
        scratch.staged.push(entries);
        scratch.rhs.push(rhs_i);
    }

    attach_artificials_and_run(n, max_iterations, scratch)
}

/// The feasibility front door for MPI-derived systems: decides
/// `A·x ≥ 1, x ≥ 0` for integer rows `A` (the homogeneity scaling of
/// `A·x > 0`), converting each coefficient to [`Rational`] exactly once,
/// straight into pooled entry storage — no intermediate rationalised row
/// vector and no materialised `b`. Pivots and outcome are bit-identical to
/// [`feasible_point_rows`] on `to_sparse_rows()` input with `b = 1`.
pub(crate) fn feasible_point_scaled_in(
    n: usize,
    a: &[IntRow],
    scratch: &mut KernelScratch<Rational>,
) -> Result<SimplexOutcome, LinalgError> {
    let max_iterations = iteration_budget(n + 2 * a.len(), a.len());
    if a.is_empty() {
        return Ok(SimplexOutcome::Feasible(vec![Rational::zero(); n])); // alloc-ok: returned witness
    }
    scratch.reset();
    for (i, a_row) in a.iter().enumerate() {
        debug_assert_eq!(a_row.dim(), n, "row dimension mismatch in simplex input");
        let mut entries = scratch.pool.take();
        entries.extend(a_row.iter_nonzero().map(|(col, v)| (col, Rational::from(v))));
        entries.push((n + i, -Rational::one()));
        // rhs = 1 is positive, so every row starts on an artificial variable
        // (the `b_i > 0` arm of the general construction).
        scratch.needs_artificial.push(true);
        scratch.staged.push(entries);
        scratch.rhs.push(Rational::one());
    }

    attach_artificials_and_run(n, max_iterations, scratch)
}

/// Second construction pass plus the pivot loop: extends the staged rows
/// with their artificial column (the artificial count is only known once
/// every row is staged), records the initial basis and pivots to optimality.
fn attach_artificials_and_run(
    n: usize,
    max_iterations: usize,
    scratch: &mut KernelScratch<Rational>,
) -> Result<SimplexOutcome, LinalgError> {
    let m = scratch.staged.len();
    let k = scratch.needs_artificial.iter().filter(|&&needs| needs).count();
    let total = n + m + k;

    // Extend rows with their artificial column and record the initial basis.
    {
        let mut art_idx = 0;
        for i in 0..m {
            let mut entries = core::mem::take(&mut scratch.staged[i]);
            if scratch.needs_artificial[i] {
                entries.push((n + m + art_idx, Rational::one()));
                scratch.basis.push(n + m + art_idx);
                art_idx += 1;
            } else {
                // The surplus/slack column of this row has coefficient +1.
                scratch.basis.push(n + i);
            }
            let row = auto_pooled(total, entries, &mut scratch.pool);
            scratch.rows.push(row);
        }
        scratch.staged.clear();
    }

    let KernelScratch { rows, rhs, basis, in_basis, reduced, merge_buf, .. } = scratch;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        dioph_obs::registry::LP_SIMPLEX_PIVOTS.incr();
        if iterations > max_iterations {
            return Err(LinalgError::IterationBudget { iterations: max_iterations });
        }

        // Reduced costs: r_j = c_j - Σ_i c_{basis[i]} * T[i][j]. The phase-1
        // cost vector is 0/1 (1 exactly on artificial columns), so the sum
        // collapses to plain subtractions over the non-zeros of the
        // artificial-basic rows — one pass over stored entries, no lookups.
        in_basis.clear();
        in_basis.resize(total, false);
        for &basic in basis.iter() {
            in_basis[basic] = true;
        }
        reduced.clear();
        for j in 0..total {
            reduced.push(if j >= n + m { Rational::one() } else { Rational::zero() });
        }
        for (row, &basic) in rows.iter().zip(basis.iter()) {
            if basic >= n + m {
                for (j, value) in row.iter_nonzero() {
                    reduced[j] -= value;
                }
            }
        }
        // Entering variable: smallest index with negative reduced cost (Bland).
        let entering = (0..total).find(|&j| !in_basis[j] && reduced[j].is_negative());

        let Some(enter) = entering else {
            // Optimal: compute the objective value (sum of artificial basics).
            let mut obj = Rational::zero();
            for i in 0..m {
                if basis[i] >= n + m {
                    obj += &rhs[i];
                }
            }
            if !obj.is_zero() {
                return Ok(SimplexOutcome::Infeasible);
            }
            // Feasible: read off the x-part of the basic solution.
            let mut x = vec![Rational::zero(); n]; // alloc-ok: returned witness
            for i in 0..m {
                if basis[i] < n {
                    x[basis[i]] = rhs[i].clone();
                }
            }
            return Ok(SimplexOutcome::Feasible(x));
        };

        // Ratio test (Bland tie-breaking by smallest basic variable index).
        let mut leaving: Option<usize> = None;
        let mut best_ratio: Option<Rational> = None;
        for i in 0..m {
            let Some(coeff) = rows[i].get(enter) else { continue };
            if coeff.is_positive() {
                let ratio = &rhs[i] / coeff;
                let better = match &best_ratio {
                    None => true,
                    Some(best) => {
                        ratio < *best
                            || (ratio == *best
                                && basis[i] < basis[leaving.expect("leaving set with best_ratio")])
                    }
                };
                if better {
                    best_ratio = Some(ratio);
                    leaving = Some(i);
                }
            }
        }

        let Some(leave) = leaving else {
            // The phase-1 objective is bounded below by zero, so an unbounded
            // direction cannot occur; defensively treat it as infeasibility.
            unreachable!("phase-1 simplex objective cannot be unbounded");
        };

        // Pivot on (leave, enter) through the shared Row kernel: normalise
        // the leave row (skipped entirely for a unit pivot), then eliminate
        // the enter column from every other row. Zero-skipping comes from
        // the row representation.
        let pivot = rows[leave].get(enter).expect("ratio test picked a non-zero pivot").clone();
        if !pivot.is_one() {
            rows[leave].scale_div(&pivot);
            if !rhs[leave].is_zero() {
                rhs[leave] = &rhs[leave] / &pivot;
            }
        }
        for i in 0..m {
            if i == leave {
                continue;
            }
            // After elimination the enter column of this row is exactly zero
            // (the normalised leave row has a 1 there), so taking the factor
            // out of the tableau writes the final value for free — no clone.
            let factor = rows[i].take(enter);
            if factor.is_zero() {
                continue;
            }
            let (leave_row, target_row) = if leave < i {
                let (head, tail) = rows.split_at_mut(i);
                (&head[leave], &mut tail[0])
            } else {
                let (head, tail) = rows.split_at_mut(leave);
                (&tail[0], &mut head[i])
            };
            target_row.eliminate_with(&factor, leave_row, enter, merge_buf);
            // Pivot boundary: elimination can cancel earlier fill-in, and a
            // densified row whose density receded must not stay dense (the
            // one-way ratchet made later passes scan dead zeros).
            target_row.resparsify();
            if !rhs[leave].is_zero() {
                let delta = &factor * &rhs[leave];
                rhs[i] -= &delta;
            }
        }
        basis[leave] = enter;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_i64s(n, d)
    }

    fn mat(rows: &[&[i64]]) -> Vec<Vec<Rational>> {
        rows.iter().map(|row| row.iter().map(|&v| Rational::from(v)).collect()).collect()
    }

    fn vec_r(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| Rational::from(v)).collect()
    }

    fn assert_feasible(a: &[Vec<Rational>], b: &[Rational]) -> Vec<Rational> {
        match feasible_point(a, b).expect("within budget") {
            SimplexOutcome::Feasible(x) => {
                for (row, bi) in a.iter().zip(b) {
                    let lhs = crate::system::dot(row, &x);
                    assert!(lhs >= *bi, "row violated: {lhs} < {bi}");
                }
                for v in &x {
                    assert!(!v.is_negative(), "negative component in witness");
                }
                x
            }
            SimplexOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn trivial_origin_is_feasible() {
        // A x >= b with b <= 0 is satisfied by x = 0.
        let a = mat(&[&[1, 2], &[3, -1]]);
        let b = vec_r(&[0, -5]);
        let x = assert_feasible(&a, &b);
        assert_eq!(x, vec_r(&[0, 0]));
    }

    #[test]
    fn single_constraint_needs_positive_x() {
        // x0 + x1 >= 3
        let a = mat(&[&[1, 1]]);
        let b = vec_r(&[3]);
        assert_feasible(&a, &b);
    }

    #[test]
    fn infeasible_negative_coefficients() {
        // -x0 - x1 >= 1 with x >= 0 is impossible.
        let a = mat(&[&[-1, -1]]);
        let b = vec_r(&[1]);
        assert_eq!(feasible_point(&a, &b).unwrap(), SimplexOutcome::Infeasible);
    }

    #[test]
    fn mixed_system() {
        //  x0 - x1 >= 2
        // -x0 + 3x1 >= 1
        let a = mat(&[&[1, -1], &[-1, 3]]);
        let b = vec_r(&[2, 1]);
        assert_feasible(&a, &b);
    }

    #[test]
    fn infeasible_opposing_rows() {
        //  x0 >= 5  and  -x0 >= -2  (i.e. x0 <= 2)
        let a = mat(&[&[1], &[-1]]);
        let b = vec_r(&[5, -2]);
        assert_eq!(feasible_point(&a, &b).unwrap(), SimplexOutcome::Infeasible);
    }

    #[test]
    fn paper_running_example() {
        // Homogeneous system from the paper's 3-MPI scaled to >= 1:
        //   -5e1 +  e2 + 3e3 >= 1
        //   -3e1 -  e2 + 3e3 >= 1
        //   - e1 +  e2 -  e3 >= 1
        let a = mat(&[&[-5, 1, 3], &[-3, -1, 3], &[-1, 1, -1]]);
        let b = vec_r(&[1, 1, 1]);
        let x = assert_feasible(&a, &b);
        // The paper's solution direction (0, 2, 1) also satisfies the scaled system.
        assert!(crate::system::dot(&a[0], &vec_r(&[0, 2, 1])) >= r(1, 1));
        assert!(!x.iter().all(dioph_arith::Rational::is_zero));
    }

    #[test]
    fn infeasible_homogeneous_row_of_zeros() {
        // 0·x >= 1 is impossible.
        let a = mat(&[&[0, 0, 0]]);
        let b = vec_r(&[1]);
        assert_eq!(feasible_point(&a, &b).unwrap(), SimplexOutcome::Infeasible);
    }

    #[test]
    fn zero_rhs_rows_are_fine() {
        // x0 - x1 >= 0, x1 >= 2.
        let a = mat(&[&[1, -1], &[0, 1]]);
        let b = vec_r(&[0, 2]);
        assert_feasible(&a, &b);
    }

    #[test]
    fn empty_system() {
        let x = feasible_point(&[], &[]).unwrap();
        assert_eq!(x, SimplexOutcome::Feasible(vec![]));
    }

    #[test]
    fn rational_coefficients() {
        // (1/2)x0 >= 3/2  =>  x0 >= 3.
        let a = vec![vec![r(1, 2)]];
        let b = vec![r(3, 2)];
        let x = assert_feasible(&a, &b);
        assert!(x[0] >= r(3, 1));
    }

    #[test]
    fn larger_random_like_instance() {
        // A structured 5x4 instance with known solution (1, 2, 3, 4).
        let a =
            mat(&[&[1, 1, 1, 1], &[2, -1, 0, 1], &[-1, 2, -1, 1], &[0, 0, 3, -2], &[1, 0, 0, 0]]);
        let sol = vec_r(&[1, 2, 3, 4]);
        let b: Vec<Rational> = a.iter().map(|row| crate::system::dot(row, &sol)).collect();
        assert_feasible(&a, &b);
    }

    #[test]
    fn exhausted_iteration_budget_is_an_error_not_a_panic() {
        // Regression: simplex.rs used to `assert!` on the budget, panicking
        // the engine-pool worker that held the pair. A system that genuinely
        // needs pivots must now surface a structured error under a budget
        // too small to finish.
        let a = mat(&[&[1, -1], &[-1, 3]]);
        let b = vec_r(&[2, 1]);
        let rows: Vec<Row> = a.iter().map(|row| Row::from_dense_auto(row)).collect();
        let err = feasible_point_rows_with_budget(2, rows, b.clone(), 1)
            .expect_err("one iteration cannot finish this system");
        assert_eq!(err, LinalgError::IterationBudget { iterations: 1 });
        assert!(err.to_string().contains("iteration budget of 1"), "{err}");
        // The same system solves fine under the default budget.
        assert!(feasible_point(&a, &b).unwrap().is_feasible());
    }

    #[test]
    fn sparse_and_dense_rows_give_identical_outcomes() {
        // The same system fed as Dense and as Sparse rows must produce the
        // same witness (bit-identical pivoting order under Bland's rule).
        let a = mat(&[&[1, 0, 0, -1, 0], &[0, 2, 0, 0, -1], &[-1, 0, 3, 0, 0]]);
        let b = vec_r(&[1, 2, 3]);
        let dense_rows: Vec<Row> = a.iter().map(|row| Row::dense(row.clone())).collect();
        let sparse_rows: Vec<Row> = a
            .iter()
            .map(|row| {
                Row::sparse(
                    row.len(),
                    row.iter()
                        .enumerate()
                        .filter(|(_, v)| !v.is_zero())
                        .map(|(i, v)| (i, v.clone()))
                        .collect(),
                )
            })
            .collect();
        let from_dense = feasible_point_rows(5, dense_rows, b.clone()).unwrap();
        let from_sparse = feasible_point_rows(5, sparse_rows, b.clone()).unwrap();
        assert_eq!(from_dense, from_sparse);
        assert_eq!(from_dense, feasible_point(&a, &b).unwrap());
        assert!(from_dense.is_feasible());
    }
}
