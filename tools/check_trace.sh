#!/usr/bin/env bash
# Validates a `--trace-out` file as loadable Chrome trace-event JSON:
#
#   * the document parses as one JSON object;
#   * `traceEvents` is a non-empty array;
#   * every event is a complete span ("ph":"X") or metadata record
#     ("ph":"M") carrying pid and tid;
#   * spans carry numeric ts/dur microsecond fields.
#
# Usage: tools/check_trace.sh TRACE_FILE
#
# Prefers python3 for a real JSON parse; falls back to grep-level shape
# checks on machines without it.
set -euo pipefail

if [ $# -ne 1 ]; then
    echo "usage: $0 TRACE_FILE" >&2
    exit 2
fi
trace="$1"

if [ ! -s "$trace" ]; then
    echo "check_trace.sh: $trace is missing or empty" >&2
    exit 1
fi

if command -v python3 > /dev/null 2>&1; then
    python3 - "$trace" << 'EOF'
import json
import sys

path = sys.argv[1]
with open(path, encoding="utf-8") as handle:
    doc = json.load(handle)

events = doc.get("traceEvents")
assert isinstance(events, list), "traceEvents must be an array"
assert events, "traceEvents must not be empty"

spans = 0
names = []
for event in events:
    ph = event.get("ph")
    assert ph in ("X", "M"), f"unexpected event phase {ph!r}"
    assert "pid" in event and "tid" in event, f"event missing pid/tid: {event}"
    if ph == "X":
        spans += 1
        assert isinstance(event.get("ts"), (int, float)), f"bad ts: {event}"
        assert isinstance(event.get("dur"), (int, float)), f"bad dur: {event}"
        assert event["ts"] >= 0 and event["dur"] >= 0, f"negative time: {event}"
    else:
        assert event.get("name") == "thread_name", f"unknown metadata: {event}"
        names.append(event["args"]["name"])

assert spans > 0, "the trace must contain at least one span"
print(
    f"check_trace.sh: {path}: {spans} span(s) over "
    f"{len(names)} named thread track(s): OK"
)
EOF
else
    # Grep fallback: the emitter writes one canonical object per event, so
    # shape greps are meaningful even without a JSON parser.
    grep -q '"traceEvents":\[' "$trace" || {
        echo "check_trace.sh: $trace: no traceEvents array" >&2
        exit 1
    }
    grep -q '"ph":"X"' "$trace" || {
        echo "check_trace.sh: $trace: no complete spans" >&2
        exit 1
    }
    grep -q '"ts":[0-9]' "$trace" || {
        echo "check_trace.sh: $trace: spans carry no timestamps" >&2
        exit 1
    }
    echo "check_trace.sh: $trace: shape OK (python3 unavailable, grep checks only)"
fi
