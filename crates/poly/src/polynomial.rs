//! Multivariate polynomials with natural coefficients and exponents.

use core::fmt;
use std::collections::BTreeMap;

use dioph_arith::Natural;

use crate::monomial::Monomial;

/// A polynomial `Σ aᵢ · uᵉⁱ` with natural coefficients `aᵢ ≥ 1` over a fixed
/// vector of unknowns.
///
/// This is exactly the shape of the polynomial `P^{q2}_{q1(t)}(u)` associated
/// with a containing query in Definition 3.3 of the paper: each containment
/// mapping contributes one monomial, and mappings producing the same monomial
/// accumulate into its coefficient.
///
/// The zero polynomial (no terms) is allowed and arises when a containing
/// query admits no containment mapping into the canonical instance.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial {
    dimension: usize,
    /// Terms keyed by monomial, coefficient strictly positive.
    terms: BTreeMap<Monomial, Natural>,
}

impl Polynomial {
    /// The zero polynomial over `dimension` unknowns.
    pub fn zero(dimension: usize) -> Self {
        Polynomial { dimension, terms: BTreeMap::new() }
    }

    /// Builds a polynomial from a list of `(coefficient, monomial)` terms,
    /// accumulating like terms and dropping zero coefficients.
    ///
    /// # Panics
    /// Panics if any monomial's dimension differs from `dimension`.
    pub fn from_terms(
        dimension: usize,
        terms: impl IntoIterator<Item = (Natural, Monomial)>,
    ) -> Self {
        let mut p = Polynomial::zero(dimension);
        for (coeff, mono) in terms {
            p.add_term(coeff, mono);
        }
        p
    }

    /// Number of unknowns.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of (distinct) monomial terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(coefficient, monomial)` pairs in a deterministic order.
    pub fn terms(&self) -> impl Iterator<Item = (&Natural, &Monomial)> {
        self.terms.iter().map(|(m, c)| (c, m))
    }

    /// Adds `coeff · mono` to the polynomial.
    ///
    /// # Panics
    /// Panics if the monomial dimension differs from the polynomial's.
    pub fn add_term(&mut self, coeff: Natural, mono: Monomial) {
        assert_eq!(mono.dimension(), self.dimension, "monomial dimension mismatch");
        if coeff.is_zero() {
            return;
        }
        self.terms.entry(mono).and_modify(|c| *c += &coeff).or_insert(coeff);
    }

    /// Adds a monomial with coefficient one (the common case when summing
    /// over containment mappings).
    pub fn add_monomial(&mut self, mono: Monomial) {
        self.add_term(Natural::one(), mono);
    }

    /// Adds another polynomial into this one.
    pub fn add_assign(&mut self, other: &Polynomial) {
        assert_eq!(self.dimension, other.dimension, "polynomial dimension mismatch");
        for (coeff, mono) in other.terms() {
            self.add_term(coeff.clone(), mono.clone());
        }
    }

    /// Multiplies two polynomials (convolution of terms).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        assert_eq!(self.dimension, other.dimension, "polynomial dimension mismatch");
        let mut out = Polynomial::zero(self.dimension);
        for (ca, ma) in self.terms() {
            for (cb, mb) in other.terms() {
                out.add_term(ca * cb, ma.mul(mb));
            }
        }
        out
    }

    /// Total degree: the maximum degree over all monomials (zero polynomial
    /// has degree 0 by convention).
    pub fn degree(&self) -> u64 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Sum of all coefficients (`P(1,…,1)`), useful for bounding the base of
    /// a counterexample (see `Mpi::diophantine_solution`).
    pub fn coefficient_sum(&self) -> Natural {
        let mut acc = Natural::zero();
        for (c, _) in self.terms() {
            acc += c;
        }
        acc
    }

    /// Evaluates the polynomial at a natural-number point.
    pub fn evaluate(&self, point: &[Natural]) -> Natural {
        let mut acc = Natural::zero();
        for (coeff, mono) in self.terms() {
            acc += &(coeff * &mono.evaluate(point));
        }
        acc
    }

    /// Renders the polynomial using custom unknown names.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> PolynomialDisplay<'a> {
        PolynomialDisplay { polynomial: self, names: Some(names) }
    }
}

/// Helper for displaying a polynomial with custom unknown names.
pub struct PolynomialDisplay<'a> {
    polynomial: &'a Polynomial,
    names: Option<&'a [String]>,
}

impl fmt::Display for PolynomialDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_polynomial(f, self.polynomial, self.names)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_polynomial(f, self, None)
    }
}

fn format_polynomial(
    f: &mut fmt::Formatter<'_>,
    p: &Polynomial,
    names: Option<&[String]>,
) -> fmt::Result {
    if p.is_zero() {
        return write!(f, "0");
    }
    let mut first = true;
    for (coeff, mono) in p.terms() {
        if !first {
            write!(f, " + ")?;
        }
        first = false;
        let mono_str = match names {
            Some(names) => mono.display_with(names).to_string(),
            None => mono.to_string(),
        };
        if coeff.is_one() && !mono.is_constant() {
            write!(f, "{mono_str}")?;
        } else if mono.is_constant() {
            write!(f, "{coeff}")?;
        } else {
            write!(f, "{coeff}*{mono_str}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    /// The paper's running polynomial: u1^7 + u1^5*u2^2 + u1^3*u3^4.
    fn paper_polynomial() -> Polynomial {
        Polynomial::from_terms(
            3,
            [
                (nat(1), Monomial::new(vec![7, 0, 0])),
                (nat(1), Monomial::new(vec![5, 2, 0])),
                (nat(1), Monomial::new(vec![3, 0, 4])),
            ],
        )
    }

    #[test]
    fn zero_polynomial() {
        let p = Polynomial::zero(2);
        assert!(p.is_zero());
        assert_eq!(p.degree(), 0);
        assert_eq!(p.evaluate(&[nat(5), nat(7)]), nat(0));
        assert_eq!(p.to_string(), "0");
        assert_eq!(p.coefficient_sum(), nat(0));
    }

    #[test]
    fn paper_polynomial_evaluations() {
        let p = paper_polynomial();
        assert_eq!(p.degree(), 7);
        assert_eq!(p.term_count(), 3);
        // Paper, Section 4: P(1,4,3) = 1 + 16 + 81 = 98 and P(1,9,3) = 1 + 81 + 81 = 163.
        assert_eq!(p.evaluate(&[nat(1), nat(4), nat(3)]), nat(98));
        assert_eq!(p.evaluate(&[nat(1), nat(9), nat(3)]), nat(163));
        // At all ones the value is the number of terms: 3 (used in Prop. 4.1).
        assert_eq!(p.evaluate(&[nat(1), nat(1), nat(1)]), nat(3));
        // At any zero the value collapses to 0 for this polynomial.
        assert_eq!(p.evaluate(&[nat(0), nat(9), nat(3)]), nat(0));
    }

    #[test]
    fn like_terms_accumulate() {
        let mut p = Polynomial::zero(2);
        p.add_monomial(Monomial::new(vec![1, 1]));
        p.add_monomial(Monomial::new(vec![1, 1]));
        p.add_term(nat(3), Monomial::new(vec![1, 1]));
        assert_eq!(p.term_count(), 1);
        assert_eq!(p.coefficient_sum(), nat(5));
        assert_eq!(p.evaluate(&[nat(2), nat(3)]), nat(30));
    }

    #[test]
    fn zero_coefficient_is_dropped() {
        let mut p = Polynomial::zero(1);
        p.add_term(nat(0), Monomial::new(vec![4]));
        assert!(p.is_zero());
    }

    #[test]
    fn addition_and_multiplication() {
        let a = Polynomial::from_terms(
            2,
            [(nat(2), Monomial::new(vec![1, 0])), (nat(1), Monomial::constant(2))],
        );
        let b = Polynomial::from_terms(2, [(nat(3), Monomial::new(vec![0, 1]))]);
        // (2x + 1)(3y) = 6xy + 3y
        let prod = a.mul(&b);
        assert_eq!(prod.term_count(), 2);
        assert_eq!(prod.evaluate(&[nat(2), nat(5)]), nat(6 * 2 * 5 + 3 * 5));
        let mut sum = a.clone();
        sum.add_assign(&b);
        assert_eq!(sum.evaluate(&[nat(2), nat(5)]), nat(2 * 2 + 1 + 3 * 5));
    }

    #[test]
    fn display_formats() {
        let p = paper_polynomial();
        // Terms are ordered by the monomial's Ord (deterministic, not paper order).
        let s = p.to_string();
        assert!(s.contains("u0^7"));
        assert!(s.contains("u0^5*u1^2"));
        assert!(s.contains("u0^3*u2^4"));
        let constant = Polynomial::from_terms(1, [(nat(4), Monomial::constant(1))]);
        assert_eq!(constant.to_string(), "4");
    }

    #[test]
    fn degree_of_mixed_terms() {
        let p = Polynomial::from_terms(
            3,
            [(nat(1), Monomial::new(vec![1, 1, 1])), (nat(5), Monomial::new(vec![0, 0, 2]))],
        );
        assert_eq!(p.degree(), 3);
    }
}
