//! # dioph-poly — monomials, polynomials and Monomial–Polynomial Inequalities
//!
//! The symbolic layer of the *"Attacking Diophantus"* (PODS 2019)
//! reproduction. Conjunctive queries are compiled (in `dioph-containment`)
//! into the objects defined here:
//!
//! * [`Monomial`] — `u^e` with natural exponents (Definition 3.2);
//! * [`Polynomial`] — `Σ aᵢ·u^{eᵢ}` with natural coefficients
//!   (Definition 3.3);
//! * [`Mpi`] — an n-dimensional Monomial–Polynomial Inequality
//!   `P(u) < M(u)` (Definition 4.1), together with its Diophantine-solution
//!   procedure: the reduction to a strict homogeneous linear system
//!   (Theorem 4.1), feasibility via `dioph-linalg` (Theorem 4.2), and the
//!   constructive extraction of explicit natural witnesses;
//! * [`OneDimMpi`] / [`OneDimGmpi`] — the one-dimensional (generalized)
//!   inequalities of Lemma 4.1.
//!
//! ```
//! use dioph_arith::Natural;
//! use dioph_linalg::FeasibilityEngine;
//! use dioph_poly::{Monomial, Mpi, Polynomial};
//!
//! // The paper's running example: u1^7 + u1^5*u2^2 + u1^3*u3^4 < u1^2*u2*u3^3.
//! let p = Polynomial::from_terms(3, [
//!     (Natural::one(), Monomial::new(vec![7, 0, 0])),
//!     (Natural::one(), Monomial::new(vec![5, 2, 0])),
//!     (Natural::one(), Monomial::new(vec![3, 0, 4])),
//! ]);
//! let mpi = Mpi::new(p, Monomial::new(vec![2, 1, 3]));
//! let witness = mpi.diophantine_solution(FeasibilityEngine::Simplex).unwrap().unwrap();
//! assert!(mpi.is_solution(&witness));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gmpi;
mod monomial;
mod mpi;
mod polynomial;
mod scratch;

pub use gmpi::OneDimGmpi;
pub use monomial::{Monomial, MonomialDisplay};
pub use mpi::{Mpi, MpiDisplay, OneDimMpi};
pub use polynomial::{Polynomial, PolynomialDisplay};
pub use scratch::MpiScratch;
