//! Fraction-free (Bareiss/Edmonds-style) phase-1 simplex over integer rows.
//!
//! The exact rational simplex of [`crate::simplex`] reduces every tableau
//! entry to lowest terms after every arithmetic operation — one gcd **per
//! entry per pivot**. Past ~16 unknowns × 48 rows the pivot values outgrow
//! machine words for good and those per-entry reductions dominate the run
//! (the `lp_ablation` sweep was capped exactly there). This module keeps the
//! whole tableau in integers instead:
//!
//! * each row `i` stores integer coefficients plus one positive denominator
//!   `d_i`, representing the rational row `r_i / d_i`;
//! * a pivot on `(leave, enter)` with stored pivot `L` updates every other
//!   row by the two-term cross-multiplication `r_i ← L·r_i − r_i[enter]·r_l`
//!   (the Bareiss step), with a **single** exact division per row — the row
//!   is reduced by the gcd of its entries, rhs and denominator, via
//!   [`Integer::checked_exact_div`];
//! * the strict Bareiss variant divides by the previous pivot instead, but
//!   it needs a denominator shared by *all* rows, which forces every row —
//!   including the untouched ones — to be rescaled on every pivot. On the
//!   sparse tableaus of Theorem 4.1 that throws away the zero-skipping the
//!   row representation exists for, so this kernel uses the gcd-normalised
//!   per-row form: rows whose pivot-column entry is zero are skipped
//!   entirely, exactly like the rational route, and the per-row gcd bounds
//!   coefficient growth at least as tightly as the previous-pivot division.
//!
//! Every decision the simplex takes — Bland's entering column (sign of a
//! reduced cost), the ratio test (comparison of `rhs_i/coeff_i` across
//! rows), tie-breaking, termination — is invariant under scaling a row by a
//! positive constant, so this kernel takes **bit-identical pivot sequences**
//! to [`crate::simplex::feasible_point_rows`] on the same input and returns
//! the same [`SimplexOutcome`], witness included (witness components are
//! read off as canonical [`Rational`]s). The differential proptests and the
//! `tests/golden/` fixtures pin that identity.
//!
//! The entry point also performs a ratio-test-free infeasibility prune: a
//! row whose coefficients are all `≤ 0` against a positive right-hand side
//! can never be satisfied by `x ≥ 0`, so such systems are rejected before
//! any tableau is built (the rational route reaches the same verdict the
//! long way around).

use dioph_arith::{Integer, Natural, Rational};

use crate::error::{iteration_budget, LinalgError};
use crate::row::{merge_sparse, sparse_is_worth_it, GenRow, IntRow};
use crate::scratch::{auto_pooled, KernelScratch};
use crate::simplex::SimplexOutcome;

/// Finds `x ≥ 0` with `A·x ≥ b` for integer rows, by fraction-free phase-1
/// simplex. Returns the exact same outcome (witness included) as the
/// rational [`crate::simplex::feasible_point_rows`] on the rationalised
/// input.
///
/// # Errors
/// [`LinalgError::IterationBudget`] if the run exceeds its iteration budget.
///
/// # Panics
/// Panics if a row's dimension differs from `n`, or if the number of rows
/// differs from the length of `b`.
pub fn feasible_point_int(
    n: usize,
    a: Vec<IntRow>,
    b: Vec<Integer>,
) -> Result<SimplexOutcome, LinalgError> {
    let budget = iteration_budget(n + 2 * a.len(), a.len());
    feasible_point_int_with_budget(n, a, b, budget)
}

/// [`feasible_point_int`] with an explicit iteration budget.
///
/// # Errors
/// [`LinalgError::IterationBudget`] after `max_iterations` pivots.
///
/// # Panics
/// As [`feasible_point_int`].
pub fn feasible_point_int_with_budget(
    n: usize,
    a: Vec<IntRow>,
    b: Vec<Integer>,
    max_iterations: usize,
) -> Result<SimplexOutcome, LinalgError> {
    let mut scratch = KernelScratch::default();
    feasible_point_int_in(n, &a, &b, max_iterations, &mut scratch)
}

/// [`feasible_point_int_with_budget`] through a caller-provided scratch, the
/// fraction-free twin of [`crate::simplex::feasible_point_rows_in`]: all
/// working buffers are recycled, reuse is capacity-only, and pivots and
/// outcome are bit-identical to the fresh-allocation route.
pub(crate) fn feasible_point_int_in(
    n: usize,
    a: &[IntRow],
    b: &[Integer],
    max_iterations: usize,
    scratch: &mut KernelScratch<Integer>,
) -> Result<SimplexOutcome, LinalgError> {
    assert_eq!(a.len(), b.len(), "row count mismatch between A and b");
    for row in a {
        assert_eq!(row.dim(), n, "row dimension mismatch in simplex input");
    }
    if a.is_empty() {
        return Ok(SimplexOutcome::Feasible(vec![Rational::zero(); n])); // alloc-ok: returned witness
    }
    // Ratio-test-free pruning: a row with no positive coefficient cannot
    // reach a positive right-hand side on x ≥ 0.
    if a.iter().zip(b).any(|(row, b_i)| {
        b_i.is_positive() && row.iter_nonzero().all(|(_, value)| !value.is_positive())
    }) {
        return Ok(SimplexOutcome::Infeasible);
    }

    // Standard form, exactly as in the rational route: a_i·x - s_i = b_i,
    // rows normalised to a non-negative rhs, artificial variables wherever
    // the surplus cannot start basic.
    //
    // Column layout: [ x (n) | s (m) | artificials (k) ].
    scratch.reset();
    for (i, (a_row, b_i)) in a.iter().zip(b).enumerate() {
        let mut entries = scratch.pool.take();
        entries.extend(a_row.iter_nonzero().map(|(col, v)| (col, v.clone())));
        entries.push((n + i, Integer::minus_one()));
        let mut rhs_i = b_i.clone();
        if rhs_i.is_negative() || rhs_i.is_zero() {
            // Flip the equation so the rhs is non-negative and the surplus
            // column carries +1 (it then serves as the initial basis).
            for (_, value) in entries.iter_mut() {
                let taken = core::mem::take(value);
                *value = -taken;
            }
            rhs_i = -rhs_i;
            scratch.needs_artificial.push(false);
        } else {
            scratch.needs_artificial.push(true);
        }
        scratch.staged.push(entries);
        scratch.rhs.push(rhs_i);
    }

    attach_artificials_and_run(n, max_iterations, scratch)
}

/// The feasibility front door for MPI-derived systems: decides
/// `A·x ≥ 1, x ≥ 0` (the homogeneity scaling of `A·x > 0`) for the stored
/// integer rows directly, with no materialised `b` and no row clones.
/// Pivots and outcome are bit-identical to [`feasible_point_int`] on cloned
/// rows with `b = 1`.
pub(crate) fn feasible_point_scaled_in(
    n: usize,
    a: &[IntRow],
    scratch: &mut KernelScratch<Integer>,
) -> Result<SimplexOutcome, LinalgError> {
    let max_iterations = iteration_budget(n + 2 * a.len(), a.len());
    if a.is_empty() {
        return Ok(SimplexOutcome::Feasible(vec![Rational::zero(); n])); // alloc-ok: returned witness
    }
    // Ratio-test-free pruning, with b = 1 always positive.
    if a.iter().any(|row| row.iter_nonzero().all(|(_, value)| !value.is_positive())) {
        return Ok(SimplexOutcome::Infeasible);
    }
    scratch.reset();
    for (i, a_row) in a.iter().enumerate() {
        debug_assert_eq!(a_row.dim(), n, "row dimension mismatch in simplex input");
        let mut entries = scratch.pool.take();
        entries.extend(a_row.iter_nonzero().map(|(col, v)| (col, v.clone())));
        entries.push((n + i, Integer::minus_one()));
        // rhs = 1 is positive, so every row starts on an artificial variable
        // (the `b_i > 0` arm of the general construction).
        scratch.needs_artificial.push(true);
        scratch.staged.push(entries);
        scratch.rhs.push(Integer::one());
    }

    attach_artificials_and_run(n, max_iterations, scratch)
}

/// Second construction pass plus the pivot loop, mirroring the rational
/// route's split: artificial columns are attached once the artificial count
/// is known, then the fraction-free pivoting runs to optimality.
fn attach_artificials_and_run(
    n: usize,
    max_iterations: usize,
    scratch: &mut KernelScratch<Integer>,
) -> Result<SimplexOutcome, LinalgError> {
    let m = scratch.staged.len();
    let k = scratch.needs_artificial.iter().filter(|&&needs| needs).count();
    let total = n + m + k;

    // Per-row positive denominators: row i represents rows[i] / dens[i].
    scratch.dens.resize(m, Natural::one());
    {
        let mut art_idx = 0;
        for i in 0..m {
            let mut entries = core::mem::take(&mut scratch.staged[i]);
            if scratch.needs_artificial[i] {
                entries.push((n + m + art_idx, Integer::one()));
                scratch.basis.push(n + m + art_idx);
                art_idx += 1;
            } else {
                scratch.basis.push(n + i);
            }
            let row = auto_pooled(total, entries, &mut scratch.pool);
            scratch.rows.push(row);
        }
        scratch.staged.clear();
    }

    let KernelScratch { rows, rhs, dens, basis, in_basis, reduced, merge_buf, .. } = scratch;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        dioph_obs::registry::LP_BAREISS_PIVOTS.incr();
        if iterations > max_iterations {
            return Err(LinalgError::IterationBudget { iterations: max_iterations });
        }

        // Reduced costs, as exact rationals (signs drive Bland's rule, and
        // summing across rows needs the true per-row scales). This is the
        // only per-entry rational arithmetic left: the eliminate pass below
        // — where the rational route spends its time — is pure integers.
        in_basis.clear();
        in_basis.resize(total, false);
        for &basic in basis.iter() {
            in_basis[basic] = true;
        }
        reduced.clear();
        for j in 0..total {
            reduced.push(if j >= n + m { Rational::one() } else { Rational::zero() });
        }
        for ((row, den), &basic) in rows.iter().zip(dens.iter()).zip(basis.iter()) {
            if basic >= n + m {
                for (j, value) in row.iter_nonzero() {
                    reduced[j] -= &Rational::new(value.clone(), den.clone());
                }
            }
        }
        // Entering variable: smallest index with negative reduced cost (Bland).
        let entering = (0..total).find(|&j| !in_basis[j] && reduced[j].is_negative());

        let Some(enter) = entering else {
            // Optimal: the objective is the sum of the artificial basics.
            let mut obj = Rational::zero();
            for i in 0..m {
                if basis[i] >= n + m {
                    obj += &Rational::new(rhs[i].clone(), dens[i].clone());
                }
            }
            if !obj.is_zero() {
                return Ok(SimplexOutcome::Infeasible);
            }
            let mut x = vec![Rational::zero(); n]; // alloc-ok: returned witness
            for i in 0..m {
                if basis[i] < n {
                    // Canonical rational: identical to the value the
                    // rational route carries in its tableau.
                    x[basis[i]] = Rational::new(rhs[i].clone(), dens[i].clone());
                }
            }
            return Ok(SimplexOutcome::Feasible(x));
        };

        // Ratio test. Within a row the denominator cancels
        // (`(rhs_i/d_i) / (coeff_i/d_i) = rhs_i/coeff_i`), so the cross-row
        // comparison `rhs_i/coeff_i < rhs_l/coeff_l` is the integer
        // comparison `rhs_i·coeff_l < rhs_l·coeff_i` (both coeffs positive).
        // Bland tie-breaking by smallest basic variable index, as in the
        // rational route.
        let mut leaving: Option<usize> = None;
        let mut best: Option<(Integer, Integer)> = None; // (rhs, coeff) of the leader
        for i in 0..m {
            let Some(coeff) = rows[i].get(enter) else { continue };
            if !coeff.is_positive() {
                continue;
            }
            let better = match (&best, leaving) {
                (None, _) => true,
                (Some((best_rhs, best_coeff)), Some(leader)) => {
                    let lhs = &rhs[i] * best_coeff;
                    let rhs_side = best_rhs * coeff;
                    lhs < rhs_side || (lhs == rhs_side && basis[i] < basis[leader])
                }
                _ => unreachable!("best and leaving are set together"),
            };
            if better {
                best = Some((rhs[i].clone(), coeff.clone()));
                leaving = Some(i);
            }
        }

        let Some(leave) = leaving else {
            // The phase-1 objective is bounded below by zero, so an unbounded
            // direction cannot occur.
            unreachable!("phase-1 simplex objective cannot be unbounded");
        };

        // Pivot. The stored pivot L is positive; the leave row itself stays
        // untouched — its denominator simply becomes L (rational value
        // r_l / L, i.e. the normalised pivot row with a 1 in the enter
        // column). Every other row with a non-zero enter coefficient F takes
        // the fraction-free cross-multiplication
        //     r_i ← L·r_i − F·r_l ,   d_i ← d_i·L ,
        // followed by one exact gcd reduction of the whole row. Rows with
        // F = 0 are not touched at all — the zero-skipping a shared
        // denominator would lose.
        let pivot = rows[leave].get(enter).cloned().expect("ratio test picked a non-zero pivot");
        for i in 0..m {
            if i == leave {
                continue;
            }
            let factor = rows[i].take(enter);
            if factor.is_zero() {
                continue;
            }
            let (leave_row, target_row) = if leave < i {
                let (head, tail) = rows.split_at_mut(i);
                (&head[leave], &mut tail[0])
            } else {
                let (head, tail) = rows.split_at_mut(leave);
                (&tail[0], &mut head[i])
            };
            eliminate_fraction_free(target_row, &pivot, &factor, leave_row, enter, merge_buf);
            rhs[i] = &(&pivot * &rhs[i]) - &(&factor * &rhs[leave]);
            dens[i] = &dens[i] * &pivot.magnitude();
            normalise_row(target_row, &mut rhs[i], &mut dens[i]);
            target_row.resparsify();
        }
        dens[leave] = pivot.magnitude();
        normalise_row(&mut rows[leave], &mut rhs[leave], &mut dens[leave]);
        basis[leave] = enter;
    }
}

/// The fraction-free elimination step: `target ← pivot·target − factor·src`,
/// skipping the column `skip` (whose coefficient the caller already removed
/// with `take`). A sparse row that fills in past the density threshold is
/// densified here, mirroring [`GenRow::eliminate`]. The sparse merge writes
/// into `spare` (swapped with the row's storage afterwards), so the pivot
/// loop recycles one buffer across every elimination.
fn eliminate_fraction_free(
    target: &mut IntRow,
    pivot: &Integer,
    factor: &Integer,
    src: &IntRow,
    skip: usize,
    spare: &mut Vec<(usize, Integer)>,
) {
    match target {
        GenRow::Dense(v) => {
            // The cross-multiplication rescales every stored entry, so a
            // dense target is two passes: scale, then subtract over the
            // source's non-zeros.
            for value in v.iter_mut() {
                if !value.is_zero() {
                    let taken = core::mem::take(value);
                    *value = &taken * pivot;
                }
            }
            for (col, coeff) in src.iter_nonzero() {
                if col == skip {
                    continue;
                }
                let delta = factor * coeff;
                v[col] -= &delta;
            }
        }
        GenRow::Sparse(s) => {
            merge_sparse(
                spare,
                &s.entries,
                src,
                skip,
                |vt| vt * pivot,
                |vs| -(factor * vs),
                |vt, vs| &(vt * pivot) - &(factor * vs),
            );
            core::mem::swap(&mut s.entries, spare);
            if !sparse_is_worth_it(s.entries.len(), s.dim) {
                *target = GenRow::Dense(s.to_dense());
            }
        }
    }
}

/// Divides a row, its rhs and its denominator by their common gcd — the
/// single exact division of the fraction-free step. The gcd always includes
/// the (positive) denominator, so the reduced denominator stays positive and
/// the row's rational value is untouched.
fn normalise_row(row: &mut IntRow, rhs: &mut Integer, den: &mut Natural) {
    let mut g: Natural = rhs.gcd(&Integer::from(den.clone()));
    for (_, value) in row.iter_nonzero() {
        if g.is_one() {
            return;
        }
        g = value.gcd(&Integer::from(g));
    }
    if g.is_one() {
        return;
    }
    debug_assert!(!g.is_zero(), "a positive denominator keeps the row gcd positive");
    let divisor = Integer::from(g.clone());
    match row {
        GenRow::Dense(v) => {
            for value in v.iter_mut() {
                if !value.is_zero() {
                    let taken = core::mem::take(value);
                    *value = taken.exact_div(&divisor);
                }
            }
        }
        GenRow::Sparse(s) => {
            for (_, value) in s.entries.iter_mut() {
                let taken = core::mem::take(value);
                *value = taken.exact_div(&divisor);
            }
        }
    }
    *rhs = rhs.exact_div(&divisor);
    *den = &*den / &g;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::simplex::feasible_point_rows;

    fn int_rows(rows: &[&[i64]]) -> Vec<IntRow> {
        rows.iter()
            .map(|row| {
                IntRow::from_dense_auto(&row.iter().map(|&v| Integer::from(v)).collect::<Vec<_>>())
            })
            .collect()
    }

    fn rational_rows(rows: &[&[i64]]) -> Vec<Row> {
        rows.iter()
            .map(|row| {
                Row::from_dense_auto(&row.iter().map(|&v| Rational::from(v)).collect::<Vec<_>>())
            })
            .collect()
    }

    /// Both routes on the same system must agree exactly, witness included.
    fn assert_routes_identical(rows: &[&[i64]], b: &[i64]) -> SimplexOutcome {
        let n = rows.first().map_or(0, |r| r.len());
        let b_int: Vec<Integer> = b.iter().map(|&v| Integer::from(v)).collect();
        let b_rat: Vec<Rational> = b.iter().map(|&v| Rational::from(v)).collect();
        let fraction_free = feasible_point_int(n, int_rows(rows), b_int).unwrap();
        let rational = feasible_point_rows(n, rational_rows(rows), b_rat).unwrap();
        assert_eq!(fraction_free, rational, "routes diverged on {rows:?} >= {b:?}");
        fraction_free
    }

    #[test]
    fn matches_rational_route_on_the_simplex_test_suite() {
        // The systems of the rational simplex's own unit tests.
        assert_routes_identical(&[&[1, 2], &[3, -1]], &[0, -5]);
        assert_routes_identical(&[&[1, 1]], &[3]);
        assert_routes_identical(&[&[-1, -1]], &[1]);
        assert_routes_identical(&[&[1, -1], &[-1, 3]], &[2, 1]);
        assert_routes_identical(&[&[1], &[-1]], &[5, -2]);
        assert_routes_identical(&[&[-5, 1, 3], &[-3, -1, 3], &[-1, 1, -1]], &[1, 1, 1]);
        assert_routes_identical(&[&[0, 0, 0]], &[1]);
        assert_routes_identical(&[&[1, -1], &[0, 1]], &[0, 2]);
        assert_routes_identical(
            &[&[1, 1, 1, 1], &[2, -1, 0, 1], &[-1, 2, -1, 1], &[0, 0, 3, -2], &[1, 0, 0, 0]],
            &[10, 4, 7, 1, 1],
        );
    }

    #[test]
    fn empty_system_is_feasible() {
        let outcome = feasible_point_int(3, vec![], vec![]).unwrap();
        assert_eq!(outcome, SimplexOutcome::Feasible(vec![Rational::zero(); 3]));
    }

    #[test]
    fn prunes_nonpositive_rows_without_pivoting() {
        // All coefficients ≤ 0 against b > 0: rejected before any tableau
        // exists, so even a zero iteration budget cannot be exhausted.
        let outcome =
            feasible_point_int_with_budget(2, int_rows(&[&[-1, -2]]), vec![Integer::one()], 0)
                .unwrap();
        assert_eq!(outcome, SimplexOutcome::Infeasible);
        let outcome =
            feasible_point_int_with_budget(2, int_rows(&[&[0, 0]]), vec![Integer::one()], 0)
                .unwrap();
        assert_eq!(outcome, SimplexOutcome::Infeasible);
        // A mixed-sign row is not prunable and must actually pivot.
        let err =
            feasible_point_int_with_budget(2, int_rows(&[&[1, -1]]), vec![Integer::from(3)], 0)
                .expect_err("zero budget cannot run a real pivot");
        assert_eq!(err, LinalgError::IterationBudget { iterations: 0 });
    }

    #[test]
    fn witnesses_are_canonical_rationals() {
        // (1/2)x0 >= 3/2 scaled to integers: x0 >= 3.
        let outcome = assert_routes_identical(&[&[1]], &[3]);
        let witness = outcome.witness().unwrap();
        assert_eq!(witness[0], Rational::from(3));
    }

    #[test]
    fn coefficients_past_the_machine_word_survive() {
        // Entries around 2^40: a single cross-multiplication already
        // overflows i64 (the inline Integer variant), so the kernel must
        // promote — and the gcd normalisation must bring values back down
        // so the verdict and witness still match the rational route.
        let big = 1i64 << 40;
        let rows: Vec<Vec<i64>> =
            vec![vec![big, -big + 1, 3], vec![-big + 3, big, -2], vec![1, -2, big]];
        let refs: Vec<&[i64]> = rows.iter().map(std::vec::Vec::as_slice).collect();
        let outcome = assert_routes_identical(&refs, &[1, 1, 1]);
        assert!(outcome.is_feasible());
    }

    #[test]
    fn budget_blowout_is_a_structured_error() {
        let err = feasible_point_int_with_budget(
            2,
            int_rows(&[&[1, -1], &[-1, 3]]),
            vec![Integer::from(2), Integer::one()],
            1,
        )
        .expect_err("one iteration cannot finish this system");
        assert_eq!(err, LinalgError::IterationBudget { iterations: 1 });
    }
}
