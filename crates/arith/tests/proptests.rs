//! Property-based tests for the exact arithmetic substrate.
//!
//! Every law is checked against `u128`/`i128` ground truth where the values
//! fit, and against algebraic identities (ring/field axioms, division
//! invariants) for values that do not fit machine integers.

use dioph_arith::{Integer, Natural, Rational};
use proptest::prelude::*;

/// Strategy for naturals with up to ~256 bits, biased towards interesting
/// small values and limb boundaries.
fn natural_strategy() -> impl Strategy<Value = Natural> {
    prop_oneof![
        3 => any::<u64>().prop_map(Natural::from),
        2 => any::<u128>().prop_map(Natural::from),
        1 => Just(Natural::zero()),
        1 => Just(Natural::one()),
        1 => Just(Natural::from(u64::MAX)),
        3 => proptest::collection::vec(any::<u64>(), 1..5).prop_map(Natural::from_limbs),
    ]
}

fn integer_strategy() -> impl Strategy<Value = Integer> {
    (natural_strategy(), any::<bool>()).prop_map(|(n, neg)| {
        let i = Integer::from(n);
        if neg {
            -i
        } else {
            i
        }
    })
}

fn rational_strategy() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1..10_000i64).prop_map(|(n, d)| Rational::from_i64s(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---------------- Natural: agreement with u128 ----------------

    #[test]
    fn natural_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expect = Natural::from(a as u128 + b as u128);
        prop_assert_eq!(&Natural::from(a) + &Natural::from(b), expect);
    }

    #[test]
    fn natural_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expect = Natural::from(a as u128 * b as u128);
        prop_assert_eq!(&Natural::from(a) * &Natural::from(b), expect);
    }

    #[test]
    fn natural_div_rem_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = Natural::from(a).div_rem(&Natural::from(b));
        prop_assert_eq!(q, Natural::from(a / b));
        prop_assert_eq!(r, Natural::from(a % b));
    }

    #[test]
    fn natural_cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(Natural::from(a).cmp(&Natural::from(b)), a.cmp(&b));
    }

    // ---------------- Natural: algebraic laws on big values ----------------

    #[test]
    fn natural_add_commutative_associative(a in natural_strategy(), b in natural_strategy(), c in natural_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn natural_mul_commutative_associative_distributive(a in natural_strategy(), b in natural_strategy(), c in natural_strategy()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn natural_sub_inverts_add(a in natural_strategy(), b in natural_strategy()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn natural_division_invariant(a in natural_strategy(), b in natural_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn natural_gcd_laws(a in natural_strategy(), b in natural_strategy()) {
        let g = a.gcd(&b);
        prop_assert_eq!(&g, &b.gcd(&a));
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
        // gcd * lcm == a * b
        prop_assert_eq!(&a.lcm(&b) * &g, &a * &b);
    }

    #[test]
    fn natural_shift_roundtrip(a in natural_strategy(), s in 0usize..200) {
        prop_assert_eq!(&(&a << s) >> s, a.clone());
        // Shifting left by s multiplies by 2^s.
        prop_assert_eq!(&a << s, &a * &Natural::from(2u64).pow(s as u64));
    }

    #[test]
    fn natural_pow_law(a in any::<u32>(), e in 0u64..6, f in 0u64..6) {
        let a = Natural::from(a);
        prop_assert_eq!(&a.pow(e) * &a.pow(f), a.pow(e + f));
    }

    #[test]
    fn natural_decimal_roundtrip(a in natural_strategy()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(s.parse::<Natural>().unwrap(), a);
    }

    // ---------------- Integer ----------------

    #[test]
    fn integer_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Integer::from(a), Integer::from(b));
        prop_assert_eq!(&ia + &ib, Integer::from(a as i128 + b as i128));
        prop_assert_eq!(&ia - &ib, Integer::from(a as i128 - b as i128));
        prop_assert_eq!(&ia * &ib, Integer::from(a as i128 * b as i128));
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn integer_div_rem_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = Integer::from(a).div_rem(&Integer::from(b));
        prop_assert_eq!(q, Integer::from(a as i128 / b as i128));
        prop_assert_eq!(r, Integer::from(a as i128 % b as i128));
    }

    #[test]
    fn integer_ring_laws(a in integer_strategy(), b in integer_strategy(), c in integer_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a + &(-&a), Integer::zero());
        prop_assert_eq!(&a * &Integer::one(), a.clone());
    }

    #[test]
    fn integer_division_invariant(a in integer_strategy(), b in integer_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.magnitude() < b.magnitude());
        // Remainder carries the sign of the dividend (or is zero).
        if !r.is_zero() {
            prop_assert_eq!(r.sign(), a.sign());
        }
    }

    // ---------------- Rational ----------------

    #[test]
    fn rational_field_laws(a in rational_strategy(), b in rational_strategy(), c in rational_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
            prop_assert_eq!(&(&b / &a) * &a, b.clone());
        }
    }

    #[test]
    fn rational_is_reduced(n in any::<i64>(), d in 1..10_000i64) {
        let r = Rational::from_i64s(n, d);
        let g = r.numer().magnitude().gcd(r.denom());
        prop_assert!(g.is_one() || r.is_zero());
        prop_assert!(!r.denom().is_zero());
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in rational_strategy(), b in rational_strategy()) {
        // f64 comparison agrees whenever the difference is not microscopic.
        let (fa, fb) = (a.to_f64_lossy(), b.to_f64_lossy());
        if (fa - fb).abs() > 1e-6 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(a in rational_strategy()) {
        let fl = Rational::from(a.floor());
        let ce = Rational::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rational::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }

    #[test]
    fn rational_parse_roundtrip(a in rational_strategy()) {
        prop_assert_eq!(a.to_string().parse::<Rational>().unwrap(), a);
    }
}
