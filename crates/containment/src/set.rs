//! Set-semantics and bag-set-semantics containment.
//!
//! These are the classical baselines the paper builds on:
//!
//! * **Set containment** `q1 ⊑s q2` is the Chandra–Merlin criterion: a
//!   containment mapping from `q2` to `q1` exists. Bag containment implies
//!   set containment (Section 2), so the set decider is both a baseline and a
//!   cheap necessary-condition filter.
//! * **Bag-set containment** (set database, bag answers): as remarked at the
//!   start of the paper's Section 3, for a projection-free containee the
//!   problem coincides with set containment, so it is exposed here under that
//!   restriction.

use dioph_cq::{containment_mappings, is_set_contained, ConjunctiveQuery, Substitution};

use crate::certificate::ContainmentError;
use crate::compile::validate_containee;

/// Result of a set-containment check, carrying the witnessing containment
/// mapping when containment holds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SetContainment {
    /// `containee ⊑s containing`, witnessed by a containment mapping from the
    /// containing query into the containee.
    Contained(Box<Substitution>),
    /// No containment mapping exists.
    NotContained,
}

impl SetContainment {
    /// `true` iff containment holds.
    pub fn holds(&self) -> bool {
        matches!(self, SetContainment::Contained(_))
    }

    /// The witnessing containment mapping, if any.
    pub fn witness(&self) -> Option<&Substitution> {
        match self {
            SetContainment::Contained(w) => Some(w),
            SetContainment::NotContained => None,
        }
    }
}

/// Decides set containment `containee ⊑s containing` (Chandra–Merlin),
/// returning a witnessing containment mapping when it holds.
pub fn set_containment(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
) -> SetContainment {
    match containment_mappings(containing, containee).into_iter().next() {
        Some(witness) => SetContainment::Contained(Box::new(witness)),
        None => SetContainment::NotContained,
    }
}

/// Decides set equivalence: containment in both directions.
pub fn are_set_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_set_contained(q1, q2) && is_set_contained(q2, q1)
}

/// Decides bag-set containment (set databases, bag answers) for a
/// **projection-free** containee: per the paper's Section 3 remark this is
/// equivalent to set containment.
///
/// # Panics
/// Panics if the containee has existential variables — the equivalence with
/// set containment is only claimed for the projection-free case. Use
/// [`bag_set_containment`] for a non-panicking, witness-carrying variant.
pub fn is_bag_set_contained(containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> bool {
    assert!(
        containee.is_projection_free(),
        "bag-set containment is reduced to set containment only for projection-free containees"
    );
    is_set_contained(containee, containing)
}

/// Decides bag-set containment `containee ⊑bs containing` with a certificate:
/// the witnessing containment mapping when it holds.
///
/// The containee must lie in the same fragment the bag decider accepts
/// (non-empty body, projection-free, safe) — the Section 3 reduction to set
/// containment is only claimed there — otherwise the corresponding
/// [`ContainmentError`] is returned instead of panicking, mirroring
/// [`CompiledPair::new`](crate::CompiledPair::new).
pub fn bag_set_containment(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
) -> Result<SetContainment, ContainmentError> {
    validate_containee(containee)?;
    Ok(set_containment(containee, containing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::paper_examples;
    use dioph_cq::{parse_query, Term};

    #[test]
    fn paper_set_containment_relations_with_witnesses() {
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let q3 = paper_examples::section2_query_q3();

        let r = set_containment(&q1, &q2);
        assert!(r.holds());
        // The witness is the identity on {x1, x2}.
        let w = r.witness().unwrap();
        assert_eq!(w.get("x1"), Some(&Term::var("x1")));
        assert_eq!(w.get("x2"), Some(&Term::var("x2")));

        let r = set_containment(&q1, &q3);
        assert!(r.holds());
        assert_eq!(r.witness().unwrap().get("y4"), Some(&Term::var("x2")));

        assert!(!set_containment(&q3, &q1).holds());
        assert!(set_containment(&q3, &q1).witness().is_none());
    }

    #[test]
    fn set_equivalence() {
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let q3 = paper_examples::section2_query_q3();
        // q1 and q2 are set-equivalent (the paper: q1 ⊑s q2 and q2 ⊑s q1).
        assert!(are_set_equivalent(&q1, &q2));
        assert!(!are_set_equivalent(&q1, &q3));
        assert!(are_set_equivalent(&q3, &q3));
    }

    #[test]
    fn bag_set_containment_matches_set_containment() {
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        assert!(is_bag_set_contained(&q1, &q2));
        assert!(is_bag_set_contained(&q2, &q1));
        let disjoint = parse_query("p(x) <- S(x, x)").unwrap();
        assert!(!is_bag_set_contained(&q1, &disjoint));
    }

    #[test]
    #[should_panic(expected = "projection-free")]
    fn bag_set_containment_rejects_projections() {
        let q3 = paper_examples::section2_query_q3();
        let q1 = paper_examples::section2_query_q1();
        let _ = is_bag_set_contained(&q3, &q1);
    }

    #[test]
    fn bag_set_certificates_carry_witnesses_and_fragment_errors() {
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let q3 = paper_examples::section2_query_q3();

        let r = bag_set_containment(&q1, &q2).unwrap();
        assert!(r.holds());
        assert_eq!(r.witness().unwrap().get("x1"), Some(&Term::var("x1")));

        let disjoint = parse_query("p(x) <- S(x, x)").unwrap();
        assert_eq!(bag_set_containment(&q1, &disjoint).unwrap(), SetContainment::NotContained);

        // Out-of-fragment containees error instead of panicking.
        let err = bag_set_containment(&q3, &q1).unwrap_err();
        assert!(matches!(err, crate::ContainmentError::ContaineeNotProjectionFree { .. }));
        let empty = parse_query("e() <- true").unwrap();
        assert!(matches!(
            bag_set_containment(&empty, &q1).unwrap_err(),
            crate::ContainmentError::EmptyBody { .. }
        ));
    }
}
